package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// This file grows the flat Tracer callback into a structured tracing
// subsystem (DESIGN.md §12): trace/span identifiers with parent→child
// links and key/value attributes, recorded into a bounded lock-free
// ring buffer (Recorder) that keeps the last-N records. The contracts
// mirror the rest of obs:
//
//   - nil is off: every Recorder and ActiveSpan method no-ops on a nil
//     receiver with zero allocations, so instrumented hot paths carry
//     only pointer checks when tracing is disabled;
//   - recording consumes no randomness and never feeds back into the
//     instrumented computation, so traced runs stay byte-identical to
//     untraced ones;
//   - the ring is safe for concurrent writers and readers (atomic slot
//     pointers + an atomic sequence counter), so LocalizeBatch workers
//     can record in parallel while a debug endpoint snapshots.

// TraceID identifies one causal tree of spans (e.g. one serving
// request with everything it triggered). Zero is "no trace".
type TraceID uint64

// SpanID identifies one span within the Recorder. Zero is "no span".
type SpanID uint64

// SpanRef names a span so other spans can parent under it or link to
// it. The zero SpanRef is the absence of a span: starting a child under
// it begins a fresh trace.
type SpanRef struct {
	Trace TraceID `json:"trace"`
	Span  SpanID  `json:"span"`
}

// Valid reports whether the reference names a real span.
func (r SpanRef) Valid() bool { return r.Span != 0 }

// Record kinds.
const (
	// KindSpan is a completed span: Start/Dur bracket the operation.
	KindSpan = "span"
	// KindEvent is an instantaneous occurrence attached to a parent
	// span (or free-standing when Parent is zero).
	KindEvent = "event"
	// KindLink ties two spans across traces — e.g. a batch span linking
	// the coalesced request spans it executed.
	KindLink = "link"
)

// Attr is one key/value span attribute. Exactly one of Str/Num is
// meaningful; numeric attributes leave Str empty.
type Attr struct {
	Key string  `json:"k"`
	Str string  `json:"s,omitempty"`
	Num float64 `json:"n,omitempty"`
}

// Record is one entry of the Recorder's ring: a completed span, an
// event, or a link. Records are immutable once published.
type Record struct {
	// Seq is the record's global sequence number (append order).
	Seq  uint64 `json:"seq"`
	Kind string `json:"kind"`

	Trace  TraceID `json:"trace"`
	Span   SpanID  `json:"span,omitempty"`
	Parent SpanID  `json:"parent,omitempty"`

	Component string `json:"component,omitempty"`
	Name      string `json:"name,omitempty"`

	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur,omitempty"`

	// Value carries an event's numeric payload.
	Value float64 `json:"value,omitempty"`
	Attrs []Attr  `json:"attrs,omitempty"`

	// LinkTrace/LinkSpan are the target of a KindLink record.
	LinkTrace TraceID `json:"linkTrace,omitempty"`
	LinkSpan  SpanID  `json:"linkSpan,omitempty"`
}

// Ref returns the record's own span reference (zero for links).
func (r Record) Ref() SpanRef { return SpanRef{Trace: r.Trace, Span: r.Span} }

// Recorder is a bounded, lock-free trace sink: the last Cap() records
// survive, older ones are overwritten. A nil *Recorder is "tracing
// off" — every method no-ops at pointer-check cost, which is the
// contract that lets instrumented hot paths stay allocation-free.
//
// Recorder also implements the legacy Tracer interface, so it can be
// installed anywhere a Tracer is accepted (plain Span/Event callbacks
// become root spans and parentless events).
type Recorder struct {
	slots []atomic.Pointer[Record]
	next  atomic.Uint64 // total records appended
	ids   atomic.Uint64 // span ID allocator
}

// DefaultRecorderCap is the ring capacity NewRecorder applies for
// non-positive requests — roomy enough for a few hundred localization
// rounds (a round emits ~4-8 records).
const DefaultRecorderCap = 4096

// NewRecorder returns a Recorder keeping the last capacity records
// (≤ 0 selects DefaultRecorderCap).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCap
	}
	return &Recorder{slots: make([]atomic.Pointer[Record], capacity)}
}

// Cap returns the ring capacity; 0 on a nil recorder.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Appended returns how many records were ever appended.
func (r *Recorder) Appended() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Dropped returns how many records the ring has overwritten.
func (r *Recorder) Dropped() uint64 {
	if n, c := r.Appended(), uint64(r.Cap()); n > c {
		return n - c
	}
	return 0
}

// publish claims the next sequence number and stores rec in its slot.
func (r *Recorder) publish(rec *Record) {
	rec.Seq = r.next.Add(1) - 1
	r.slots[rec.Seq%uint64(len(r.slots))].Store(rec)
}

// Records snapshots the ring's surviving records in append order. The
// snapshot is consistent per record (records are immutable) but not
// across records: writers racing the snapshot may add or overwrite
// entries while it runs. Nil-safe (returns nil).
func (r *Recorder) Records() []Record {
	if r == nil {
		return nil
	}
	out := make([]Record, 0, len(r.slots))
	for i := range r.slots {
		if p := r.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Start opens a span under parent (zero parent begins a fresh trace).
// The returned ActiveSpan is a stack value: annotate it with Attr/
// AttrStr/Flag and publish it with End. On a nil recorder the span is
// inert — every method no-ops and no clock is read.
func (r *Recorder) Start(parent SpanRef, component, name string) ActiveSpan {
	if r == nil {
		return ActiveSpan{}
	}
	id := SpanID(r.ids.Add(1))
	trace := parent.Trace
	if trace == 0 {
		trace = TraceID(id)
	}
	return ActiveSpan{
		rec:       r,
		ref:       SpanRef{Trace: trace, Span: id},
		parent:    parent.Span,
		component: component,
		name:      name,
		start:     time.Now(),
	}
}

// RecordEvent appends an event under parent (zero parent = free-standing).
func (r *Recorder) RecordEvent(parent SpanRef, component, name string, value float64) {
	if r == nil {
		return
	}
	id := SpanID(r.ids.Add(1))
	trace := parent.Trace
	if trace == 0 {
		trace = TraceID(id)
	}
	r.publish(&Record{
		Kind: KindEvent, Trace: trace, Span: id, Parent: parent.Span,
		Component: component, Name: name,
		Start: time.Now(), Value: sanitizeNum(value),
	})
}

// Link records a causal link from one span to another — the batch-span
// → request-span edges the serving layer emits. Invalid refs no-op.
func (r *Recorder) Link(from, to SpanRef) {
	if r == nil || !from.Valid() || !to.Valid() {
		return
	}
	r.publish(&Record{
		Kind: KindLink, Trace: from.Trace, Span: from.Span,
		Start:     time.Now(),
		LinkTrace: to.Trace, LinkSpan: to.Span,
	})
}

// Event implements the legacy Tracer interface: a parentless event.
func (r *Recorder) Event(component, name string, value float64) {
	r.RecordEvent(SpanRef{}, component, name, value)
}

// Span implements the legacy Tracer interface: a root span in a fresh
// trace, ended by the returned function.
func (r *Recorder) Span(component, name string) func() {
	sp := r.Start(SpanRef{}, component, name)
	return sp.End
}

// maxSpanAttrs is ActiveSpan's inline attribute capacity. It is a
// fixed array so annotating a span never allocates; extra attributes
// beyond it are silently dropped.
const maxSpanAttrs = 8

// ActiveSpan is an open span in flight. It is a value type living on
// the instrumented function's stack: attribute setters write into a
// fixed inline array and End publishes one Record, so the only heap
// allocation of a traced span is the published record itself. The zero
// ActiveSpan (from a nil recorder) is inert.
//
// An ActiveSpan is single-goroutine, like the code paths it brackets.
type ActiveSpan struct {
	rec       *Recorder
	ref       SpanRef
	parent    SpanID
	component string
	name      string
	start     time.Time
	n         int
	attrs     [maxSpanAttrs]Attr
}

// Active reports whether the span will record (false for spans from a
// nil recorder, and after End).
func (s *ActiveSpan) Active() bool { return s.rec != nil }

// Ref returns the span's reference for parenting children or linking;
// zero when inert.
func (s *ActiveSpan) Ref() SpanRef {
	if s.rec == nil {
		return SpanRef{}
	}
	return s.ref
}

// Attr records a numeric attribute (non-finite values are clamped).
func (s *ActiveSpan) Attr(key string, v float64) {
	if s.rec == nil || s.n == maxSpanAttrs {
		return
	}
	s.attrs[s.n] = Attr{Key: key, Num: sanitizeNum(v)}
	s.n++
}

// AttrStr records a string attribute.
func (s *ActiveSpan) AttrStr(key, v string) {
	if s.rec == nil || s.n == maxSpanAttrs {
		return
	}
	s.attrs[s.n] = Attr{Key: key, Str: v}
	s.n++
}

// Flag records a boolean attribute, but only when on — absent flags
// read as false, which keeps the common all-false case recordless.
func (s *ActiveSpan) Flag(key string, on bool) {
	if on {
		s.Attr(key, 1)
	}
}

// End publishes the span. Idempotent; no-op when inert.
func (s *ActiveSpan) End() {
	if s.rec == nil {
		return
	}
	rec := &Record{
		Kind: KindSpan, Trace: s.ref.Trace, Span: s.ref.Span, Parent: s.parent,
		Component: s.component, Name: s.name,
		Start: s.start, Dur: time.Since(s.start),
	}
	if s.n > 0 {
		rec.Attrs = append([]Attr(nil), s.attrs[:s.n]...)
	}
	s.rec.publish(rec)
	s.rec = nil
}

// sanitizeNum clamps non-finite values so every Record marshals to
// valid JSON (encoding/json rejects NaN and ±Inf).
func sanitizeNum(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	default:
		return v
	}
}

// MultiTracer fans Tracer callbacks out to several sinks — the way a
// metrics tracer and a flight recorder are installed simultaneously
// without touching call sites. Build one with NewMultiTracer.
type MultiTracer struct {
	ts []Tracer
}

// NewMultiTracer combines tracers into one. Nil entries are skipped
// and nested MultiTracers are flattened; the result is nil when
// nothing remains and the single tracer itself when only one does, so
// instrumented code keeps its plain nil-is-off check.
func NewMultiTracer(tracers ...Tracer) Tracer {
	var flat []Tracer
	for _, t := range tracers {
		switch tt := t.(type) {
		case nil:
			continue
		case *MultiTracer:
			flat = append(flat, tt.ts...)
		default:
			flat = append(flat, t)
		}
	}
	switch len(flat) {
	case 0:
		return nil
	case 1:
		return flat[0]
	default:
		return &MultiTracer{ts: flat}
	}
}

// Unwrap exposes the fan-out targets (for RecorderOf/WithoutRecorder).
func (m *MultiTracer) Unwrap() []Tracer { return m.ts }

// Event implements Tracer.
func (m *MultiTracer) Event(component, name string, value float64) {
	for _, t := range m.ts {
		t.Event(component, name, value)
	}
}

// Span implements Tracer.
func (m *MultiTracer) Span(component, name string) func() {
	ends := make([]func(), len(m.ts))
	for i, t := range m.ts {
		ends[i] = t.Span(component, name)
	}
	return func() {
		for _, end := range ends {
			end()
		}
	}
}

// RecorderOf extracts the first Recorder installed in t (directly or
// inside a MultiTracer). Components that record rich spans resolve it
// once at construction and drive the structured API; nil means no
// recorder is attached.
func RecorderOf(t Tracer) *Recorder {
	switch tt := t.(type) {
	case *Recorder:
		return tt
	case interface{ Unwrap() []Tracer }:
		for _, inner := range tt.Unwrap() {
			if r := RecorderOf(inner); r != nil {
				return r
			}
		}
	}
	return nil
}

// WithoutRecorder returns t with every Recorder stripped — the legacy
// callback sinks only. Components that drive a Recorder through the
// structured API route their flat Span/Event callbacks here so the
// recorder does not capture every operation twice.
func WithoutRecorder(t Tracer) Tracer {
	switch tt := t.(type) {
	case nil, *Recorder:
		return nil
	case interface{ Unwrap() []Tracer }:
		kept := make([]Tracer, 0, len(tt.Unwrap()))
		for _, inner := range tt.Unwrap() {
			if stripped := WithoutRecorder(inner); stripped != nil {
				kept = append(kept, stripped)
			}
		}
		return NewMultiTracer(kept...)
	}
	return t
}
