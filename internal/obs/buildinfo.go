package obs

import (
	"fmt"
	"runtime/debug"
)

// BuildInfo describes the running binary, resolved from the Go
// build-info section (module version + embedded VCS stamps).
type BuildInfo struct {
	// Version is the main module version ("(devel)" for local builds).
	Version string
	// GoVersion is the toolchain that built the binary.
	GoVersion string
	// Revision is the VCS commit, "unknown" when the binary was built
	// outside a checkout (e.g. `go test` binaries).
	Revision string
	// Modified reports uncommitted changes at build time.
	Modified bool
}

// Build resolves the binary's build info with "unknown" fallbacks, so
// callers can log/export it unconditionally.
func Build() BuildInfo {
	b := BuildInfo{Version: "unknown", GoVersion: "unknown", Revision: "unknown"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if info.Main.Version != "" {
		b.Version = info.Main.Version
	}
	if info.GoVersion != "" {
		b.GoVersion = info.GoVersion
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.modified":
			b.Modified = s.Value == "true"
		}
	}
	return b
}

// String renders a one-line summary for startup logs.
func (b BuildInfo) String() string {
	rev := b.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if b.Modified {
		rev += "+dirty"
	}
	return fmt.Sprintf("version=%s go=%s revision=%s", b.Version, b.GoVersion, rev)
}

// RegisterBuildInfo exports the binary's build info on r as the
// constant gauge
//
//	fttt_build_info{version="...",goversion="...",revision="..."} 1
//
// — the Prometheus convention for joining build metadata onto other
// series — and returns the resolved info for logging.
func RegisterBuildInfo(r *Registry) BuildInfo {
	b := Build()
	name := fmt.Sprintf(`fttt_build_info{version=%q,goversion=%q,revision=%q}`,
		b.Version, b.GoVersion, b.Revision)
	r.Gauge(name).Set(1)
	return b
}
