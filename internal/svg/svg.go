// Package svg is a minimal SVG document builder used to render field
// divisions, deployments and tracking traces as standalone .svg files —
// the repository's equivalent of the paper's figures. Only the handful
// of elements the renderers need are implemented; everything is plain
// strings, no external dependencies.
package svg

import (
	"fmt"
	"io"
	"strings"
)

// Doc accumulates SVG elements in a user coordinate system that is
// y-flipped to match the field convention (y grows upward).
type Doc struct {
	width, height float64
	scale         float64
	body          strings.Builder
}

// New creates a document rendering a worldW×worldH area at the given
// pixel scale (pixels per world unit).
func New(worldW, worldH, scale float64) *Doc {
	if scale <= 0 {
		scale = 1
	}
	return &Doc{width: worldW * scale, height: worldH * scale, scale: scale}
}

// x/y convert world coordinates to pixel coordinates (y flipped).
func (d *Doc) x(v float64) float64 { return v * d.scale }
func (d *Doc) y(v float64) float64 { return d.height - v*d.scale }

// Rect draws an axis-aligned rectangle given by its lower-left corner
// and size in world units.
func (d *Doc) Rect(x, y, w, h float64, fill, stroke string, strokeWidth float64) {
	fmt.Fprintf(&d.body,
		`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" stroke="%s" stroke-width="%.2f"/>`+"\n",
		d.x(x), d.y(y+h), w*d.scale, h*d.scale, orNone(fill), orNone(stroke), strokeWidth)
}

// Circle draws a circle centred at (cx, cy) with radius r (world units).
func (d *Doc) Circle(cx, cy, r float64, fill, stroke string, strokeWidth float64) {
	fmt.Fprintf(&d.body,
		`<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s" stroke="%s" stroke-width="%.2f"/>`+"\n",
		d.x(cx), d.y(cy), r*d.scale, orNone(fill), orNone(stroke), strokeWidth)
}

// Line draws a segment.
func (d *Doc) Line(x1, y1, x2, y2 float64, stroke string, strokeWidth float64) {
	fmt.Fprintf(&d.body,
		`<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="%.2f"/>`+"\n",
		d.x(x1), d.y(y1), d.x(x2), d.y(y2), orNone(stroke), strokeWidth)
}

// Polyline draws a connected path through the points (flat x,y pairs).
func (d *Doc) Polyline(xy []float64, stroke string, strokeWidth float64) {
	if len(xy) < 4 || len(xy)%2 != 0 {
		return
	}
	var pts strings.Builder
	for i := 0; i < len(xy); i += 2 {
		fmt.Fprintf(&pts, "%.2f,%.2f ", d.x(xy[i]), d.y(xy[i+1]))
	}
	fmt.Fprintf(&d.body,
		`<polyline points="%s" fill="none" stroke="%s" stroke-width="%.2f"/>`+"\n",
		strings.TrimSpace(pts.String()), orNone(stroke), strokeWidth)
}

// Text places a label anchored at (x, y), world units, with the given
// pixel font size.
func (d *Doc) Text(x, y float64, size float64, fill, s string) {
	fmt.Fprintf(&d.body,
		`<text x="%.2f" y="%.2f" font-size="%.1f" font-family="sans-serif" fill="%s">%s</text>`+"\n",
		d.x(x), d.y(y), size, orNone(fill), escape(s))
}

// Cross draws an ×-marker of half-size r at (x, y).
func (d *Doc) Cross(x, y, r float64, stroke string, strokeWidth float64) {
	d.Line(x-r, y-r, x+r, y+r, stroke, strokeWidth)
	d.Line(x-r, y+r, x+r, y-r, stroke, strokeWidth)
}

// WriteTo emits the complete SVG document.
func (d *Doc) WriteTo(w io.Writer) (int64, error) {
	var out strings.Builder
	fmt.Fprintf(&out,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		d.width, d.height, d.width, d.height)
	out.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	out.WriteString(d.body.String())
	out.WriteString("</svg>\n")
	n, err := io.WriteString(w, out.String())
	return int64(n), err
}

// String returns the document as a string.
func (d *Doc) String() string {
	var sb strings.Builder
	d.WriteTo(&sb) //nolint:errcheck — strings.Builder cannot fail
	return sb.String()
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// Palette returns a deterministic categorical colour for index i — used
// to tint faces.
func Palette(i int) string {
	palette := []string{
		"#e6f2ff", "#ffe6e6", "#e6ffe6", "#fff5e6", "#f2e6ff",
		"#e6ffff", "#ffffe6", "#ffe6f5", "#eef2e6", "#e6e9ff",
	}
	if i < 0 {
		i = -i
	}
	return palette[i%len(palette)]
}
