package svg

import (
	"bytes"
	"strings"
	"testing"

	"fttt/internal/deploy"
	"fttt/internal/field"
	"fttt/internal/geom"
	"fttt/internal/rf"
)

func TestDocBasicElements(t *testing.T) {
	d := New(100, 50, 2)
	d.Rect(0, 0, 10, 10, "#ff0000", "#000000", 1)
	d.Circle(50, 25, 5, "", "#00ff00", 2)
	d.Line(0, 0, 100, 50, "#0000ff", 1)
	d.Polyline([]float64{0, 0, 10, 10, 20, 0}, "#123456", 1)
	d.Text(5, 5, 12, "#000", "hello & <world>")
	d.Cross(30, 30, 2, "#999", 1)
	out := d.String()
	for _, want := range []string{
		"<svg", "</svg>", "<rect", "<circle", "<line", "<polyline", "<text",
		"hello &amp; &lt;world&gt;",
		`width="200"`, `height="100"`, // 2× scale
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestYAxisFlipped(t *testing.T) {
	d := New(100, 100, 1)
	d.Circle(0, 0, 1, "#000", "", 0) // world origin → bottom-left
	out := d.String()
	// cy should be at pixel 100 (bottom), not 0.
	if !strings.Contains(out, `cy="100.00"`) {
		t.Errorf("world (0,0) should map to pixel y=100:\n%s", out)
	}
}

func TestPolylineDegenerate(t *testing.T) {
	d := New(10, 10, 1)
	d.Polyline([]float64{1, 2}, "#000", 1)    // too short
	d.Polyline([]float64{1, 2, 3}, "#000", 1) // odd length
	if strings.Contains(d.String(), "<polyline") {
		t.Error("degenerate polylines should be skipped")
	}
}

func TestPaletteDeterministicAndCyclic(t *testing.T) {
	if Palette(3) != Palette(3) {
		t.Error("palette not deterministic")
	}
	if Palette(0) != Palette(10) {
		t.Error("palette should cycle with period 10")
	}
	if Palette(-2) == "" {
		t.Error("negative index should still map")
	}
}

func TestRenderDivision(t *testing.T) {
	fieldRect := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	dep := deploy.Grid(fieldRect, 4)
	rc, err := field.NewRatioClassifier(dep.Positions(), rf.Default().UncertaintyC(1))
	if err != nil {
		t.Fatal(err)
	}
	div, err := field.Divide(fieldRect, rc, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderDivision(&buf, div, dep.Positions(), nil, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Error("not a complete SVG document")
	}
	if strings.Count(out, "<circle") < 4 {
		t.Error("sensor markers missing")
	}
}

func TestRenderTrack(t *testing.T) {
	fieldRect := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	dep := deploy.Grid(fieldRect, 9)
	truth := []geom.Point{geom.Pt(10, 10), geom.Pt(50, 50), geom.Pt(90, 20)}
	est := []geom.Point{geom.Pt(12, 9), geom.Pt(48, 53), geom.Pt(88, 22)}
	var buf bytes.Buffer
	if err := RenderTrack(&buf, fieldRect, dep.Positions(), truth, est); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "<polyline") != 2 {
		t.Errorf("expected 2 polylines (truth + estimates), got %d",
			strings.Count(out, "<polyline"))
	}
	if !strings.Contains(out, "true trace") {
		t.Error("legend missing")
	}
}
