package svg

import (
	"io"

	"fttt/internal/field"
	"fttt/internal/geom"
)

// RenderDivision draws a field division: cells tinted by face, the
// sensors as black dots, and optionally the Apollonius boundary circles.
// cellStride downsamples the raster (1 = every cell) to keep files small.
func RenderDivision(w io.Writer, div *field.Division, nodes []geom.Point, circles []geom.Circle, cellStride int) error {
	if cellStride < 1 {
		cellStride = 1
	}
	d := New(div.Field.Width(), div.Field.Height(), 6)
	cs := div.CellSize * float64(cellStride)
	for r := 0; r < div.Rows; r += cellStride {
		for c := 0; c < div.Cols; c += cellStride {
			center := div.CellCenter(c, r)
			f := div.FaceAt(center)
			d.Rect(center.X-cs/2, center.Y-cs/2, cs, cs, Palette(f.ID), "", 0)
		}
	}
	for _, circ := range circles {
		d.Circle(circ.C.X, circ.C.Y, circ.R, "", "#00000033", 0.7)
	}
	for _, n := range nodes {
		d.Circle(n.X, n.Y, 0.8, "#000000", "", 0)
	}
	d.Rect(div.Field.Min.X, div.Field.Min.Y, div.Field.Width(), div.Field.Height(), "", "#000000", 1)
	_, err := d.WriteTo(w)
	return err
}

// RenderTrack draws a tracking run like Fig. 10: the true trace as a
// solid line, estimates as × markers joined by a light line, sensors as
// dots.
func RenderTrack(w io.Writer, fieldRect geom.Rect, nodes, truth, estimates []geom.Point) error {
	d := New(fieldRect.Width(), fieldRect.Height(), 6)
	d.Rect(fieldRect.Min.X, fieldRect.Min.Y, fieldRect.Width(), fieldRect.Height(), "#fcfcfc", "#000000", 1)
	flat := func(pts []geom.Point) []float64 {
		xy := make([]float64, 0, 2*len(pts))
		for _, p := range pts {
			xy = append(xy, p.X, p.Y)
		}
		return xy
	}
	if len(estimates) >= 2 {
		d.Polyline(flat(estimates), "#cc444466", 0.8)
	}
	if len(truth) >= 2 {
		d.Polyline(flat(truth), "#2255cc", 1.6)
	}
	for _, e := range estimates {
		d.Cross(e.X, e.Y, 0.7, "#cc4444", 0.8)
	}
	for _, n := range nodes {
		d.Circle(n.X, n.Y, 0.9, "#000000", "", 0)
	}
	d.Text(fieldRect.Min.X+1, fieldRect.Max.Y-2, 11, "#2255cc", "true trace")
	d.Text(fieldRect.Min.X+1, fieldRect.Max.Y-5, 11, "#cc4444", "estimates")
	_, err := d.WriteTo(w)
	return err
}
