package rf

import (
	"math"
	"testing"

	"fttt/internal/randx"
)

func TestNewIrregularityValidation(t *testing.T) {
	rng := randx.New(1)
	if _, err := NewIrregularity(-0.1, 64, rng); err == nil {
		t.Error("negative DOI should fail")
	}
	if _, err := NewIrregularity(0.01, 3, rng); err == nil {
		t.Error("too few sectors should fail")
	}
	if _, err := NewIrregularity(0.01, 64, rng); err != nil {
		t.Errorf("valid irregularity rejected: %v", err)
	}
}

func TestZeroDOIIsIsotropic(t *testing.T) {
	ir, _ := NewIrregularity(0, 64, randx.New(2))
	for theta := 0.0; theta < 7; theta += 0.1 {
		if g := ir.Gain(theta); g != 0 {
			t.Fatalf("DOI=0 gain at θ=%v is %v, want 0", theta, g)
		}
	}
	if ir.MaxGain() != 0 {
		t.Error("MaxGain should be 0")
	}
}

func TestGainZeroMean(t *testing.T) {
	ir, _ := NewIrregularity(0.05, 64, randx.New(3))
	var sum float64
	const n = 3600
	for i := 0; i < n; i++ {
		sum += ir.Gain(2 * math.Pi * float64(i) / n)
	}
	if mean := sum / n; math.Abs(mean) > 0.05 {
		t.Errorf("gain mean %v should be ≈0", mean)
	}
}

func TestGainContinuity(t *testing.T) {
	// Continuity including across the 2π wrap: adjacent directions have
	// bounded gain difference.
	ir, _ := NewIrregularity(0.05, 64, randx.New(4))
	prev := ir.Gain(0)
	for i := 1; i <= 720; i++ {
		theta := 2 * math.Pi * float64(i) / 720
		g := ir.Gain(theta)
		// Half a degree per step; 0.05 dB/deg walk over 5.6°-sectors
		// can change at most ~0.3 dB per half degree after smoothing.
		if math.Abs(g-prev) > 0.5 {
			t.Fatalf("gain jump %.3f at θ=%v", math.Abs(g-prev), theta)
		}
		prev = g
	}
}

func TestGainPeriodic(t *testing.T) {
	ir, _ := NewIrregularity(0.03, 32, randx.New(5))
	for _, theta := range []float64{0.3, 1.5, 4.4} {
		a := ir.Gain(theta)
		b := ir.Gain(theta + 2*math.Pi)
		c := ir.Gain(theta - 2*math.Pi)
		if math.Abs(a-b) > 1e-9 || math.Abs(a-c) > 1e-9 {
			t.Fatalf("gain not 2π-periodic at θ=%v: %v %v %v", theta, a, b, c)
		}
	}
}

func TestHigherDOIMoreAnisotropy(t *testing.T) {
	small, _ := NewIrregularity(0.005, 64, randx.New(6))
	large, _ := NewIrregularity(0.1, 64, randx.New(6))
	if large.MaxGain() <= small.MaxGain() {
		t.Errorf("DOI 0.1 max gain %.3f should exceed DOI 0.005 %.3f",
			large.MaxGain(), small.MaxGain())
	}
}

func TestIrregularityDeterministic(t *testing.T) {
	a, _ := NewIrregularity(0.05, 64, randx.New(7))
	b, _ := NewIrregularity(0.05, 64, randx.New(7))
	for theta := 0.0; theta < 6.28; theta += 0.37 {
		if a.Gain(theta) != b.Gain(theta) {
			t.Fatal("irregularity not reproducible")
		}
	}
}
