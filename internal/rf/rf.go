// Package rf implements the radio-signal substrate of the paper: the
// log-distance path-loss model with Gaussian noise (eq. 1), RSS sampling,
// and the uncertainty constant C (eq. 3) that determines the Apollonius
// boundaries of a pair's uncertain area (eq. 4).
//
// Throughout, "RSS" is the received signal strength in dBm: larger values
// mean the receiver is closer to the source. Following eq. 1,
//
//	RSS(d) = P0 + A − 10·β·log10(d/d0) + X,   X ~ N(0, σ_X²)
//
// with reference distance d0 = 1 m.
package rf

import (
	"errors"
	"fmt"
	"math"

	"fttt/internal/randx"
)

// Model holds the parameters of the log-distance path-loss model.
// The zero value is not usable; construct with NewModel or use Default.
type Model struct {
	// P0 is the measured path loss (received power) at the reference
	// distance d0 = 1 m, in dBm. Its absolute value shifts every RSS by
	// the same constant and therefore never affects pairwise comparisons.
	P0 float64
	// A is a fixed antenna/environment gain in dB (paper's A term).
	A float64
	// Beta is the path-loss exponent: 2 for free space, 3-4 for
	// environments with reflections (Table 1 uses β = 4).
	Beta float64
	// SigmaX is the standard deviation of the Gaussian noise term in dB
	// (Table 1 uses σ_X = 6).
	SigmaX float64
	// MinDist floors the distance used in the log term so a target
	// standing exactly on a sensor does not yield +Inf. Defaults to 0.1 m.
	MinDist float64
	// FastFraction splits σ_X between a slow shadowing component that is
	// constant within one grouping sampling's short Δt window and a fast
	// per-instant component: σ_fast = FastFraction·σ_X and
	// σ_slow = √(1−FastFraction²)·σ_X, so single-shot samples keep the
	// full σ_X of eq. 1. The flips of Fig. 1 are produced by the fast
	// component; the paper's coin-flip model of Sec. 5.1 corresponds to
	// a small FastFraction. Default 0.5, which reproduces the paper's
	// qualitative trends (error falling with k and with finer ε) while
	// keeping realistic shadowing; see EXPERIMENTS.md.
	FastFraction float64
}

// Default returns the model with the paper's Table 1 settings
// (β = 4, σ_X = 6) and a conventional P0 of -40 dBm.
func Default() Model {
	return Model{P0: -40, A: 0, Beta: 4, SigmaX: 6, MinDist: 0.1, FastFraction: 0.5}
}

// NewModel validates and returns a model.
func NewModel(p0, a, beta, sigmaX float64) (Model, error) {
	m := Model{P0: p0, A: a, Beta: beta, SigmaX: sigmaX, MinDist: 0.1, FastFraction: 0.5}
	return m, m.Validate()
}

// SigmaFast returns the per-instant noise component's standard deviation.
func (m Model) SigmaFast() float64 { return m.FastFraction * m.SigmaX }

// SigmaSlow returns the within-group-constant shadowing component's
// standard deviation, chosen so slow² + fast² = σ_X².
func (m Model) SigmaSlow() float64 {
	f := m.FastFraction
	return m.SigmaX * math.Sqrt(1-f*f)
}

// Validate reports whether the model parameters are physically meaningful.
func (m Model) Validate() error {
	if m.Beta <= 0 {
		return fmt.Errorf("rf: path-loss exponent β must be positive, got %v", m.Beta)
	}
	if m.SigmaX < 0 {
		return fmt.Errorf("rf: noise σ_X must be non-negative, got %v", m.SigmaX)
	}
	if m.MinDist < 0 {
		return errors.New("rf: MinDist must be non-negative")
	}
	if m.FastFraction < 0 || m.FastFraction > 1 {
		return fmt.Errorf("rf: FastFraction must be in [0,1], got %v", m.FastFraction)
	}
	return nil
}

// MeanRSS returns the noise-free expected RSS at distance d metres.
func (m Model) MeanRSS(d float64) float64 {
	if d < m.MinDist {
		d = m.MinDist
	}
	if d < 1e-12 {
		d = 1e-12
	}
	return m.P0 + m.A - 10*m.Beta*math.Log10(d)
}

// SampleRSS returns one noisy RSS sample at distance d, drawing the noise
// term X from the given stream.
func (m Model) SampleRSS(d float64, rng *randx.Stream) float64 {
	return m.MeanRSS(d) + rng.Normal(0, m.SigmaX)
}

// InvertMeanRSS returns the distance whose noise-free RSS equals rss — the
// textbook range estimate used by range-based baselines. The result is
// floored at MinDist.
func (m Model) InvertMeanRSS(rss float64) float64 {
	d := math.Pow(10, (m.P0+m.A-rss)/(10*m.Beta))
	if d < m.MinDist {
		return m.MinDist
	}
	return d
}

// UncertaintyC returns the constant C of eq. 3 for sensing resolution
// epsilon (dBm):
//
//	C = exp( a·ε + a²·σ_X² ),   a = ln10 / (10·β)
//
// C > 1 whenever ε > 0 or σ_X > 0. Points x with distance ratio
// d_m/d_n in (1/C, C) lie in the pair's uncertain area; the boundary is
// the pair of Apollonius circles with ratios C and 1/C (eq. 4).
func (m Model) UncertaintyC(epsilon float64) float64 {
	a := math.Ln10 / (10 * m.Beta)
	return math.Exp(a*epsilon + a*a*m.SigmaX*m.SigmaX)
}

// GroupFlipProbability returns the probability that a grouping sampling
// of k instants observes a flipped order (or a within-ε tie) for a pair
// whose noise-free RSS margin is deltaMu = |MeanRSS(dm) − MeanRSS(dn)|,
// under the split-noise model: the shadowing difference S ~ N(0, 2σ_slow²)
// is constant within the group, the fast difference is N(0, 2σ_fast²) per
// instant, and an instant counts as inverted when margin + S + F falls
// below 0 (and as a resolution tie when |margin + S + F| < ε).
//
// The group reports Flipped unless all k instants agree decisively, so
//
//	P(flip) = 1 − E_S[ a(S)^k + b(S)^k ]
//
// with a(S) = P(one instant decisively ordinal), b(S) = P(decisively
// inverted). The expectation over S is computed by trapezoid quadrature.
func (m Model) GroupFlipProbability(deltaMu, epsilon float64, k int) float64 {
	if k < 1 {
		return 0
	}
	sf := m.SigmaFast() * math.Sqrt2
	ss := m.SigmaSlow() * math.Sqrt2
	kf := float64(k)
	// P(one instant > ε) and P(one instant < -ε) given total offset u.
	agree := func(u float64) (a, b float64) {
		if sf == 0 {
			switch {
			case u >= epsilon:
				return 1, 0
			case u <= -epsilon:
				return 0, 1
			default:
				return 0, 0
			}
		}
		a = 0.5 * math.Erfc((epsilon-u)/(sf*math.Sqrt2))
		b = 0.5 * math.Erfc((epsilon+u)/(sf*math.Sqrt2))
		return a, b
	}
	if ss == 0 {
		a, b := agree(deltaMu)
		return 1 - math.Pow(a, kf) - math.Pow(b, kf)
	}
	// E_S over S ~ N(0, ss²), ±5σ, trapezoid.
	const steps = 200
	lo, hi := -5*ss, 5*ss
	h := (hi - lo) / steps
	var sum, wsum float64
	for i := 0; i <= steps; i++ {
		s := lo + float64(i)*h
		w := math.Exp(-s * s / (2 * ss * ss))
		if i == 0 || i == steps {
			w /= 2
		}
		a, b := agree(deltaMu + s)
		sum += w * (math.Pow(a, kf) + math.Pow(b, kf))
		wsum += w
	}
	return 1 - sum/wsum
}

// CalibratedC returns the uncertainty constant calibrated to the grouping
// sampling: the distance ratio at which a group of k samples observes a
// flipped pair with probability 1/2, so the signature vectors' uncertain
// areas coincide with where Algorithm 1 actually reports Flipped.
//
// Eq. 3's constant averages the noise once and ignores k, which can leave
// the uncertain band statistically inconsistent with the grouping
// sampling (see DESIGN.md §5 and the BoundaryAblation experiment). Here
// the boundary margin Δμ* solves GroupFlipProbability(Δμ*, ε, k) = 1/2
// by bisection, and
//
//	C = 10^(Δμ* / (10·β)).
//
// With σ_X = 0 and ε = 0 it degenerates to 1 (certain bisectors); the
// result is floored at eq. 3's noise-free value 10^(ε/(10β)).
func (m Model) CalibratedC(epsilon float64, k int) float64 {
	floor := math.Pow(10, epsilon/(10*m.Beta))
	if k < 2 || m.SigmaX == 0 {
		return floor
	}
	// P(flip) is monotone decreasing in the margin; bisect on Δμ.
	lo, hi := 0.0, 20*m.SigmaX+epsilon
	if m.GroupFlipProbability(hi, epsilon, k) >= 0.5 {
		return math.Pow(10, hi/(10*m.Beta)) // pathological: everything flips
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if m.GroupFlipProbability(mid, epsilon, k) >= 0.5 {
			lo = mid
		} else {
			hi = mid
		}
	}
	c := math.Pow(10, (lo+hi)/2/(10*m.Beta))
	if c < floor {
		return floor
	}
	return c
}

// FlipProbability returns the probability that a single noisy comparison
// of the pair's RSS is inverted relative to the true distance order, for a
// target at distances dm and dn from the two nodes. The difference of two
// independent N(0, σ²) noises is N(0, 2σ²), so
//
//	P(flip) = Φ( −|Δμ| / (√2·σ_X) ),  Δμ = MeanRSS(dm) − MeanRSS(dn).
//
// It is 0.5 when the target is equidistant and decays as the target moves
// away from the bisector — the quantitative content of Fig. 1.
func (m Model) FlipProbability(dm, dn float64) float64 {
	if m.SigmaX == 0 {
		if m.MeanRSS(dm) == m.MeanRSS(dn) {
			return 0.5
		}
		return 0
	}
	delta := math.Abs(m.MeanRSS(dm) - m.MeanRSS(dn))
	z := delta / (math.Sqrt2 * m.SigmaX)
	return 0.5 * math.Erfc(z/math.Sqrt2)
}
