package rf

import (
	"fmt"
	"math"

	"fttt/internal/randx"
)

// Irregularity models direction-dependent sensing with the standard DOI
// (Degree Of Irregularity) construction: each node's antenna gain varies
// with azimuth as a continuous random walk over K sectors, with DOI the
// maximum per-degree gain change. The paper's introduction names sensing
// irregularity as one of the uncertainty sources FTTT must tolerate; the
// IrregularityRobustness experiment sweeps DOI to verify that tolerance.
//
// Gain values are in dB and average to zero over the circle, so DOI = 0
// degenerates to the isotropic model of eq. 1.
type Irregularity struct {
	// sectors[i] is the gain (dB) of sector i covering
	// [i, i+1)·(2π/len) radians.
	sectors []float64
}

// NewIrregularity draws one node's azimuthal gain map. doi is the
// per-degree maximum gain change (typical literature values 0.002-0.05
// when gains are scaled to the unit path loss; here it is interpreted
// directly in dB per degree). sectors must be ≥ 4.
func NewIrregularity(doi float64, sectors int, rng *randx.Stream) (*Irregularity, error) {
	if doi < 0 {
		return nil, fmt.Errorf("rf: DOI must be non-negative, got %v", doi)
	}
	if sectors < 4 {
		return nil, fmt.Errorf("rf: need at least 4 sectors, got %d", sectors)
	}
	g := make([]float64, sectors)
	if doi == 0 {
		return &Irregularity{sectors: g}, nil
	}
	degPerSector := 360 / float64(sectors)
	step := doi * degPerSector
	// Random walk around the circle…
	for i := 1; i < sectors; i++ {
		g[i] = g[i-1] + rng.Uniform(-step, step)
	}
	// …closed by spreading the wrap-around discontinuity evenly, then
	// centred to zero mean.
	gap := g[sectors-1] - g[0]
	for i := range g {
		g[i] -= gap * float64(i) / float64(sectors-1)
	}
	var mean float64
	for _, v := range g {
		mean += v
	}
	mean /= float64(sectors)
	for i := range g {
		g[i] -= mean
	}
	return &Irregularity{sectors: g}, nil
}

// Gain returns the gain (dB) toward azimuth theta (radians), with linear
// interpolation between sectors.
func (ir *Irregularity) Gain(theta float64) float64 {
	n := float64(len(ir.sectors))
	// Normalise theta to [0, 2π).
	t := math.Mod(theta, 2*math.Pi)
	if t < 0 {
		t += 2 * math.Pi
	}
	pos := t / (2 * math.Pi) * n
	i := int(pos)
	if i >= len(ir.sectors) {
		i = len(ir.sectors) - 1
	}
	frac := pos - float64(i)
	next := (i + 1) % len(ir.sectors)
	return ir.sectors[i]*(1-frac) + ir.sectors[next]*frac
}

// MaxGain returns the largest absolute sector gain, a measure of how
// anisotropic this node is.
func (ir *Irregularity) MaxGain() float64 {
	worst := 0.0
	for _, v := range ir.sectors {
		if a := math.Abs(v); a > worst {
			worst = a
		}
	}
	return worst
}
