package rf

import (
	"math"
	"testing"

	"fttt/internal/randx"
)

func TestMeanRSSMonotone(t *testing.T) {
	m := Default()
	prev := math.Inf(1)
	for d := 0.5; d <= 200; d += 0.5 {
		rss := m.MeanRSS(d)
		if rss > prev {
			t.Fatalf("MeanRSS not monotone decreasing at d=%v", d)
		}
		prev = rss
	}
}

func TestMeanRSSReference(t *testing.T) {
	m := Default()
	// At d0 = 1 m the log term vanishes.
	if got := m.MeanRSS(1); got != m.P0+m.A {
		t.Errorf("MeanRSS(1) = %v, want %v", got, m.P0+m.A)
	}
	// One decade of distance costs 10β dB.
	if got := m.MeanRSS(1) - m.MeanRSS(10); math.Abs(got-10*m.Beta) > 1e-9 {
		t.Errorf("decade loss = %v, want %v", got, 10*m.Beta)
	}
}

func TestMeanRSSFloorsDistance(t *testing.T) {
	m := Default()
	if got, want := m.MeanRSS(0), m.MeanRSS(m.MinDist); got != want {
		t.Errorf("MeanRSS(0) = %v, want floored %v", got, want)
	}
	if math.IsInf(m.MeanRSS(0), 0) || math.IsNaN(m.MeanRSS(0)) {
		t.Error("MeanRSS(0) must be finite")
	}
}

func TestInvertMeanRSSRoundTrip(t *testing.T) {
	m := Default()
	for _, d := range []float64{0.5, 1, 3, 10, 40, 100} {
		got := m.InvertMeanRSS(m.MeanRSS(d))
		if math.Abs(got-d) > 1e-9*d {
			t.Errorf("round trip d=%v got %v", d, got)
		}
	}
	// Extremely strong signals floor at MinDist.
	if got := m.InvertMeanRSS(1e6); got != m.MinDist {
		t.Errorf("InvertMeanRSS(1e6) = %v, want MinDist", got)
	}
}

func TestSampleRSSNoiseStatistics(t *testing.T) {
	m := Default()
	rng := randx.New(5)
	const n = 100000
	var sum, sum2 float64
	mu := m.MeanRSS(20)
	for i := 0; i < n; i++ {
		v := m.SampleRSS(20, rng)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-mu) > 0.1 {
		t.Errorf("sample mean = %v, want ≈%v", mean, mu)
	}
	if math.Abs(sd-m.SigmaX) > 0.1 {
		t.Errorf("sample stddev = %v, want ≈%v", sd, m.SigmaX)
	}
}

func TestSampleRSSNoiseless(t *testing.T) {
	m := Default()
	m.SigmaX = 0
	rng := randx.New(5)
	if got := m.SampleRSS(20, rng); got != m.MeanRSS(20) {
		t.Errorf("noiseless sample = %v, want mean %v", got, m.MeanRSS(20))
	}
}

func TestUncertaintyC(t *testing.T) {
	m := Default() // β=4, σ=6
	a := math.Ln10 / 40
	want := math.Exp(a*1 + a*a*36)
	if got := m.UncertaintyC(1); math.Abs(got-want) > 1e-12 {
		t.Errorf("C = %v, want %v", got, want)
	}
	if got := m.UncertaintyC(1); got <= 1 {
		t.Errorf("C must exceed 1, got %v", got)
	}
	// C grows with ε and with σ.
	if m.UncertaintyC(2) <= m.UncertaintyC(1) {
		t.Error("C should grow with ε")
	}
	m2 := m
	m2.SigmaX = 12
	if m2.UncertaintyC(1) <= m.UncertaintyC(1) {
		t.Error("C should grow with σ_X")
	}
	// Noise-free, zero-resolution sensing degenerates to C = 1 (certain
	// bisector division).
	m3 := m
	m3.SigmaX = 0
	if got := m3.UncertaintyC(0); got != 1 {
		t.Errorf("C(ε=0, σ=0) = %v, want 1", got)
	}
}

func TestUncertaintyCLowerBetaWiderArea(t *testing.T) {
	// Smaller β makes RSS differences smaller, so uncertainty widens.
	m4 := Default()
	m2 := Default()
	m2.Beta = 2
	if m2.UncertaintyC(1) <= m4.UncertaintyC(1) {
		t.Error("C should be larger for smaller β")
	}
}

func TestFlipProbability(t *testing.T) {
	m := Default()
	// Equidistant target flips half the time.
	if got := m.FlipProbability(10, 10); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("equidistant flip prob = %v, want 0.5", got)
	}
	// Flip probability decays with separation and is symmetric.
	p1 := m.FlipProbability(5, 10)
	p2 := m.FlipProbability(10, 5)
	if p1 != p2 {
		t.Errorf("flip prob asymmetric: %v vs %v", p1, p2)
	}
	p3 := m.FlipProbability(2, 10)
	if !(p3 < p1 && p1 < 0.5) {
		t.Errorf("flip prob should decay: p(2,10)=%v p(5,10)=%v", p3, p1)
	}
	if p3 < 0 || p3 > 1 {
		t.Errorf("flip prob out of [0,1]: %v", p3)
	}
}

func TestFlipProbabilityNoiseless(t *testing.T) {
	m := Default()
	m.SigmaX = 0
	if got := m.FlipProbability(5, 10); got != 0 {
		t.Errorf("noiseless distinct flip prob = %v, want 0", got)
	}
	if got := m.FlipProbability(7, 7); got != 0.5 {
		t.Errorf("noiseless equidistant flip prob = %v, want 0.5", got)
	}
}

func TestFlipProbabilityEmpirical(t *testing.T) {
	// Monte-Carlo check of the analytic flip probability.
	m := Default()
	rng := randx.New(77)
	dm, dn := 12.0, 15.0
	want := m.FlipProbability(dm, dn)
	const n = 200000
	flips := 0
	for i := 0; i < n; i++ {
		// True order: dm < dn so RSS_m should exceed RSS_n.
		if m.SampleRSS(dm, rng) <= m.SampleRSS(dn, rng) {
			flips++
		}
	}
	got := float64(flips) / n
	if math.Abs(got-want) > 0.01 {
		t.Errorf("empirical flip prob = %v, analytic %v", got, want)
	}
}

func TestValidate(t *testing.T) {
	if _, err := NewModel(-40, 0, 4, 6); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	if _, err := NewModel(-40, 0, 0, 6); err == nil {
		t.Error("β=0 should be rejected")
	}
	if _, err := NewModel(-40, 0, -1, 6); err == nil {
		t.Error("β<0 should be rejected")
	}
	if _, err := NewModel(-40, 0, 4, -1); err == nil {
		t.Error("σ<0 should be rejected")
	}
	m := Default()
	m.MinDist = -1
	if err := m.Validate(); err == nil {
		t.Error("negative MinDist should be rejected")
	}
}
