package baseline

import (
	"testing"

	"fttt/internal/deploy"
	"fttt/internal/geom"
	"fttt/internal/mobility"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/sampling"
	"fttt/internal/stats"
)

var fieldRect = geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))

func sampler(n int, sigma float64) (*sampling.Sampler, []geom.Point) {
	d := deploy.Grid(fieldRect, n)
	m := rf.Default()
	m.SigmaX = sigma
	return &sampling.Sampler{Model: m, Nodes: d.Positions()}, d.Positions()
}

func TestDirectMLENoiselessAccuracy(t *testing.T) {
	s, nodes := sampler(16, 0)
	d, err := NewDirectMLE(fieldRect, nodes, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(1)
	var errs []float64
	for trial := 0; trial < 30; trial++ {
		pos := geom.Pt(rng.Uniform(15, 85), rng.Uniform(15, 85))
		g := s.Sample(pos, 5, rng.SplitN("t", trial))
		est := d.LocalizeGroup(g)
		errs = append(errs, est.Dist(pos))
	}
	if mean := stats.Mean(errs); mean > 12 {
		t.Errorf("noiseless Direct MLE mean error %v m too large", mean)
	}
}

func TestDirectMLEEstimateInField(t *testing.T) {
	s, nodes := sampler(9, 6)
	d, err := NewDirectMLE(fieldRect, nodes, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(2)
	for trial := 0; trial < 50; trial++ {
		pos := geom.Pt(rng.Uniform(0, 100), rng.Uniform(0, 100))
		g := s.Sample(pos, 5, rng.SplitN("t", trial))
		if est := d.LocalizeGroup(g); !fieldRect.Contains(est) {
			t.Fatalf("estimate %v outside field", est)
		}
	}
}

func TestDirectMLEHandlesFaults(t *testing.T) {
	d0 := deploy.Grid(fieldRect, 9)
	s := &sampling.Sampler{Model: rf.Default(), Nodes: d0.Positions(), ReportLoss: 0.5}
	d, err := NewDirectMLE(fieldRect, d0.Positions(), 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(3)
	for trial := 0; trial < 30; trial++ {
		g := s.Sample(geom.Pt(50, 50), 5, rng.SplitN("t", trial))
		if est := d.LocalizeGroup(g); !fieldRect.Contains(est) {
			t.Fatalf("estimate %v outside field with faults", est)
		}
	}
}

func TestDirectMLEAllSilent(t *testing.T) {
	_, nodes := sampler(4, 6)
	d, _ := NewDirectMLE(fieldRect, nodes, 2)
	g := &sampling.Group{
		RSS:      [][]float64{{0, 0, 0, 0}},
		Reported: []bool{false, false, false, false},
	}
	est := d.LocalizeGroup(g)
	if !fieldRect.Contains(est) {
		t.Errorf("all-silent estimate %v outside field", est)
	}
}

func TestNewDirectMLEErrors(t *testing.T) {
	_, nodes := sampler(4, 6)
	if _, err := NewDirectMLE(fieldRect, nodes[:1], 2); err == nil {
		t.Error("single node should fail")
	}
	if _, err := NewDirectMLE(fieldRect, nodes, -1); err == nil {
		t.Error("bad cell size should fail")
	}
}

func TestNewPMValidation(t *testing.T) {
	_, nodes := sampler(4, 6)
	if _, err := NewPM(fieldRect, nodes, 2, PMConfig{MaxVelocity: 0, Period: 1}); err == nil {
		t.Error("zero MaxVelocity should fail")
	}
	if _, err := NewPM(fieldRect, nodes, 2, PMConfig{MaxVelocity: 5, Period: 0}); err == nil {
		t.Error("zero Period should fail")
	}
	if _, err := NewPM(fieldRect, nodes, 2, PMConfig{MaxVelocity: 5, Period: 1}); err != nil {
		t.Errorf("valid PM rejected: %v", err)
	}
}

func TestPMTracksNoiselessTrace(t *testing.T) {
	s, nodes := sampler(16, 0)
	pm, err := NewPM(fieldRect, nodes, 2, PMConfig{MaxVelocity: 5, Period: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	m := mobility.Waypoints([]geom.Point{geom.Pt(20, 20), geom.Pt(80, 20), geom.Pt(80, 80)}, 3)
	trace := mobility.Sample(m, 40, 2)
	rng := randx.New(4)
	var errs []float64
	for i, tp := range trace {
		g := s.Sample(tp.Pos, 5, rng.SplitN("t", i))
		est := pm.LocalizeGroup(g)
		errs = append(errs, est.Dist(tp.Pos))
	}
	if mean := stats.Mean(errs); mean > 12 {
		t.Errorf("noiseless PM mean error %v m too large", mean)
	}
}

func TestPMVelocityConstraintLimitsJumps(t *testing.T) {
	// Consecutive PM estimates cannot jump farther than the reach plus
	// the restart case; verify typical steps are bounded when the filter
	// has continuous paths available.
	s, nodes := sampler(16, 3)
	pm, err := NewPM(fieldRect, nodes, 2, PMConfig{MaxVelocity: 5, Period: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	m := mobility.Waypoints([]geom.Point{geom.Pt(20, 50), geom.Pt(80, 50)}, 4)
	trace := mobility.Sample(m, 15, 2)
	rng := randx.New(5)
	var prev geom.Point
	jumps := 0
	for i, tp := range trace {
		g := s.Sample(tp.Pos, 5, rng.SplitN("t", i))
		est := pm.LocalizeGroup(g)
		if i > 0 && est.Dist(prev) > 5*0.5+2*pmSlack(pm)+1e-9 {
			jumps++
		}
		prev = est
	}
	// Path restarts can jump, but they should be rare on an easy trace.
	if jumps > len(trace)/3 {
		t.Errorf("%d/%d steps exceeded the velocity reach", jumps, len(trace))
	}
}

func pmSlack(p *PM) float64 { return p.slack }

func TestPMReset(t *testing.T) {
	s, nodes := sampler(9, 6)
	pm, _ := NewPM(fieldRect, nodes, 2, PMConfig{MaxVelocity: 5, Period: 0.5})
	rng := randx.New(6)
	g := s.Sample(geom.Pt(30, 30), 5, rng)
	pm.LocalizeGroup(g)
	if len(pm.scores) == 0 {
		t.Fatal("scores should be populated")
	}
	pm.Reset()
	if len(pm.scores) != 0 {
		t.Error("Reset should clear scores")
	}
}

func TestPMBeamDefaultApplied(t *testing.T) {
	_, nodes := sampler(9, 6)
	pm, _ := NewPM(fieldRect, nodes, 2, PMConfig{MaxVelocity: 5, Period: 0.5})
	if pm.cfg.Beam != 24 {
		t.Errorf("default beam = %d, want 24", pm.cfg.Beam)
	}
}

func TestDetectionFromGroup(t *testing.T) {
	g := &sampling.Group{
		RSS: [][]float64{
			{10, 30, 20},
			{12, 28, 22},
		},
		Reported: []bool{true, true, true},
	}
	det, rep := detectionFromGroup(g)
	// Mean RSS: 11, 29, 21 → order 1, 2, 0.
	if len(det) != 3 || det[0] != 1 || det[1] != 2 || det[2] != 0 {
		t.Errorf("detection = %v, want [1 2 0]", det)
	}
	if !rep[0] || !rep[1] || !rep[2] {
		t.Errorf("reported = %v", rep)
	}
}

func TestFaceOrdersRestriction(t *testing.T) {
	_, nodes := sampler(4, 6)
	d, _ := NewDirectMLE(fieldRect, nodes, 5)
	fo := d.fo
	full := fo.orders[0]
	if len(full) != 4 {
		t.Fatalf("full order has %d IDs", len(full))
	}
	sub := fo.restricted(0, map[int]bool{full[0]: true, full[2]: true})
	if len(sub) != 2 || sub[0] != full[0] || sub[1] != full[2] {
		t.Errorf("restricted = %v from %v", sub, full)
	}
}
