// Package baseline implements the two comparison trackers of the paper's
// evaluation (Sec. 7):
//
//   - DirectMLE — Sequence-Based Localization [24]: the field is divided
//     by perpendicular bisectors into certain faces, each with a
//     reference rank sequence (node IDs by ascending distance from the
//     face centroid); a localization sorts the measured RSS into a
//     detection sequence and picks the face whose reference sequence has
//     the maximum Spearman rank correlation.
//
//   - PM — the optimal path-matching MLE of [22]: the same per-face rank
//     correlation becomes the per-step emission score of a
//     velocity-constrained dynamic program over face centroids, realised
//     here as a beam-limited Viterbi filter. PM requires assuming the
//     target's maximum velocity, the constraint the paper criticises.
//
// Both baselines rely on certain detection sequences, so both divide the
// field with the degenerate C = 1 classifier (Fig. 3(a)); their errors
// under noise are exactly what FTTT's uncertain-area machinery avoids.
package baseline

import (
	"fmt"
	"math"
	"sort"

	"fttt/internal/field"
	"fttt/internal/geom"
	"fttt/internal/sampling"
	"fttt/internal/seq"
)

// faceOrders precomputes, for every face, the node IDs sorted by ascending
// distance from the face centroid (i.e. by descending expected RSS).
type faceOrders struct {
	div    *field.Division
	orders [][]int // orders[faceID] is the full reference sequence
}

func newFaceOrders(div *field.Division, nodes []geom.Point) *faceOrders {
	fo := &faceOrders{div: div, orders: make([][]int, len(div.Faces))}
	ids := make([]int, len(nodes))
	for i := range ids {
		ids[i] = i
	}
	for fi := range div.Faces {
		c := div.Faces[fi].Centroid
		fo.orders[fi] = seq.ByAscending(ids, func(id int) float64 {
			return nodes[id].Dist(c)
		})
	}
	return fo
}

// restricted returns the face's reference sequence filtered to the given
// reported-ID set, preserving order.
func (fo *faceOrders) restricted(faceID int, reported map[int]bool) []int {
	full := fo.orders[faceID]
	out := make([]int, 0, len(reported))
	for _, id := range full {
		if reported[id] {
			out = append(out, id)
		}
	}
	return out
}

// emission scores how well the measured detection sequence fits a face:
// Spearman's rho in [-1, 1], or -1 when the sequence is too short to
// correlate.
func (fo *faceOrders) emission(faceID int, detection []int, reported map[int]bool) float64 {
	if len(detection) < 2 {
		return -1
	}
	ref := fo.restricted(faceID, reported)
	rho, err := seq.Spearman(detection, ref)
	if err != nil {
		return -1
	}
	return rho
}

// detectionFromGroup reduces a grouping sampling to one certain detection
// sequence by mean RSS over the group's instants — the baselines receive
// the same raw samples FTTT does, reduced the only way a certain-sequence
// method can use them.
func detectionFromGroup(g *sampling.Group) (detection []int, reported map[int]bool) {
	means, ids := g.MeanRSS()
	reported = make(map[int]bool, len(ids))
	byID := make(map[int]float64, len(ids))
	for i, id := range ids {
		reported[id] = true
		byID[id] = means[i]
	}
	detection = seq.ByDescending(ids, func(id int) float64 { return byID[id] })
	return detection, reported
}

// DirectMLE is the Sequence-Based Localization tracker [24].
type DirectMLE struct {
	fo *faceOrders
}

// NewDirectMLE divides the field with perpendicular bisectors (C = 1) at
// the given grid cell size and prepares the reference sequences.
func NewDirectMLE(fieldRect geom.Rect, nodes []geom.Point, cellSize float64) (*DirectMLE, error) {
	rc, err := field.NewRatioClassifier(nodes, 1)
	if err != nil {
		return nil, err
	}
	div, err := field.Divide(fieldRect, rc, cellSize)
	if err != nil {
		return nil, err
	}
	return NewDirectMLEWithDivision(div, nodes), nil
}

// NewDirectMLEWithDivision builds the tracker over an existing certain
// (C = 1) division, so it can be shared with a PM instance.
func NewDirectMLEWithDivision(div *field.Division, nodes []geom.Point) *DirectMLE {
	return &DirectMLE{fo: newFaceOrders(div, nodes)}
}

// Division exposes the certain-face division (for benches and tests).
func (d *DirectMLE) Division() *field.Division { return d.fo.div }

// LocalizeGroup estimates the target position from one grouping sampling.
// Ties at the maximum correlation average their centroids.
func (d *DirectMLE) LocalizeGroup(g *sampling.Group) geom.Point {
	detection, reported := detectionFromGroup(g)
	best := math.Inf(-1)
	var ties []geom.Point
	for fi := range d.fo.div.Faces {
		s := d.fo.emission(fi, detection, reported)
		switch {
		case s > best:
			best = s
			ties = ties[:0]
			ties = append(ties, d.fo.div.Faces[fi].Centroid)
		case s == best:
			ties = append(ties, d.fo.div.Faces[fi].Centroid)
		}
	}
	if len(ties) == 0 {
		return d.fo.div.Field.Center()
	}
	return geom.Centroid(ties)
}

// PMConfig parameterises the path-matching tracker.
type PMConfig struct {
	// MaxVelocity is the assumed maximum target speed in m/s — the extra
	// imposed condition [22] needs (Table 1 targets move at 1-5 m/s).
	MaxVelocity float64
	// Period is the time between consecutive localizations in seconds.
	Period float64
	// Beam bounds how many candidate faces survive each step; 0 selects
	// a default of 24.
	Beam int
}

// PM is the path-matching MLE tracker [22]: a Viterbi filter over face
// centroids whose transitions are limited by the assumed maximum
// velocity.
type PM struct {
	fo    *faceOrders
	cfg   PMConfig
	slack float64 // transition slack absorbing centroid quantisation
	// scores holds the surviving path scores from the previous step.
	scores map[int]float64
}

// NewPM builds a PM tracker over the certain bisector division.
func NewPM(fieldRect geom.Rect, nodes []geom.Point, cellSize float64, cfg PMConfig) (*PM, error) {
	rc, err := field.NewRatioClassifier(nodes, 1)
	if err != nil {
		return nil, err
	}
	div, err := field.Divide(fieldRect, rc, cellSize)
	if err != nil {
		return nil, err
	}
	return NewPMWithDivision(div, nodes, cfg)
}

// NewPMWithDivision builds the tracker over an existing certain (C = 1)
// division, so it can be shared with a DirectMLE instance.
func NewPMWithDivision(div *field.Division, nodes []geom.Point, cfg PMConfig) (*PM, error) {
	if cfg.MaxVelocity <= 0 {
		return nil, fmt.Errorf("baseline: PM needs a positive MaxVelocity, got %v", cfg.MaxVelocity)
	}
	if cfg.Period <= 0 {
		return nil, fmt.Errorf("baseline: PM needs a positive Period, got %v", cfg.Period)
	}
	if cfg.Beam == 0 {
		cfg.Beam = 24
	}
	return &PM{
		fo:  newFaceOrders(div, nodes),
		cfg: cfg,
		// Two mean face diameters of slack: centroid-to-centroid hops can
		// exceed the true displacement by up to a face size on each end.
		slack:  2 * math.Sqrt(div.MeanFaceArea()),
		scores: make(map[int]float64),
	}, nil
}

// Division exposes the certain-face division (for benches and tests).
func (p *PM) Division() *field.Division { return p.fo.div }

// Reset clears the accumulated path state.
func (p *PM) Reset() { p.scores = make(map[int]float64) }

// LocalizeGroup advances the path filter with one grouping sampling and
// returns the current estimate — the centroid of the face ending the best
// velocity-feasible path.
func (p *PM) LocalizeGroup(g *sampling.Group) geom.Point {
	detection, reported := detectionFromGroup(g)
	div := p.fo.div

	// Score all faces for this step's emission, keep the top Beam.
	type cand struct {
		id       int
		emission float64
	}
	cands := make([]cand, 0, len(div.Faces))
	for fi := range div.Faces {
		cands = append(cands, cand{id: fi, emission: p.fo.emission(fi, detection, reported)})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].emission != cands[b].emission {
			return cands[a].emission > cands[b].emission
		}
		return cands[a].id < cands[b].id
	})
	if len(cands) > p.cfg.Beam {
		cands = cands[:p.cfg.Beam]
	}

	reach := p.cfg.MaxVelocity*p.cfg.Period + p.slack
	next := make(map[int]float64, len(cands))
	bestID, bestScore := -1, math.Inf(-1)
	for _, c := range cands {
		// Best feasible predecessor; a path break restarts the path with
		// a penalty so continuous paths are preferred.
		prevBest := math.Inf(-1)
		for pid, score := range p.scores {
			if div.Faces[pid].Centroid.Dist(div.Faces[c.id].Centroid) <= reach {
				if score > prevBest {
					prevBest = score
				}
			}
		}
		var total float64
		if math.IsInf(prevBest, -1) {
			const restartPenalty = 1
			total = c.emission - restartPenalty
		} else {
			total = prevBest + c.emission
		}
		next[c.id] = total
		if total > bestScore {
			bestScore = total
			bestID = c.id
		}
	}
	p.scores = next
	if bestID < 0 {
		return div.Field.Center()
	}
	return div.Faces[bestID].Centroid
}
