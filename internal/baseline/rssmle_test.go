package baseline

import (
	"testing"

	"fttt/internal/geom"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/stats"
)

func TestNewRSSMLEValidation(t *testing.T) {
	_, nodes := sampler(9, 6)
	if _, err := NewRSSMLE(fieldRect, nil, rf.Default(), 2); err == nil {
		t.Error("no nodes should fail")
	}
	if _, err := NewRSSMLE(fieldRect, nodes, rf.Default(), 0); err == nil {
		t.Error("zero cell should fail")
	}
	if _, err := NewRSSMLE(fieldRect, nodes, rf.Default(), 1e6); err == nil {
		t.Error("huge cell should fail")
	}
	bad := rf.Default()
	bad.Beta = 0
	if _, err := NewRSSMLE(fieldRect, nodes, bad, 2); err == nil {
		t.Error("bad model should fail")
	}
}

func TestRSSMLENoiselessIsNearExact(t *testing.T) {
	s, nodes := sampler(9, 0)
	m, err := NewRSSMLE(fieldRect, nodes, s.Model, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(1)
	for trial := 0; trial < 20; trial++ {
		pos := geom.Pt(rng.Uniform(10, 90), rng.Uniform(10, 90))
		g := s.Sample(pos, 3, rng.SplitN("t", trial))
		est := m.LocalizeGroup(g)
		// Error bounded by the grid diagonal.
		if est.Dist(pos) > 2 {
			t.Fatalf("noiseless RSSMLE err %.2f at %v", est.Dist(pos), pos)
		}
	}
}

func TestRSSMLEEmptyGroup(t *testing.T) {
	_, nodes := sampler(4, 6)
	m, _ := NewRSSMLE(fieldRect, nodes, rf.Default(), 4)
	if est := m.LocalizeGroup(emptyGroup(4)); est != fieldRect.Center() {
		t.Errorf("empty group gave %v", est)
	}
}

func TestRSSMLESensitiveToCalibrationBias(t *testing.T) {
	// The absolute-RSS method degrades under a P0 miscalibration that
	// comparison-based FTTT is immune to by construction.
	s, nodes := sampler(16, 3)
	calibrated, _ := NewRSSMLE(fieldRect, nodes, s.Model, 2)
	biased, _ := NewRSSMLE(fieldRect, nodes, s.Model, 2)
	biased.Bias = 8 // 8 dB calibration error
	rng := randx.New(2)
	var errCal, errBias []float64
	for trial := 0; trial < 60; trial++ {
		pos := geom.Pt(rng.Uniform(15, 85), rng.Uniform(15, 85))
		g := s.Sample(pos, 5, rng.SplitN("t", trial))
		errCal = append(errCal, calibrated.LocalizeGroup(g).Dist(pos))
		errBias = append(errBias, biased.LocalizeGroup(g).Dist(pos))
	}
	if stats.Mean(errBias) <= stats.Mean(errCal) {
		t.Errorf("bias should hurt: calibrated %.2f vs biased %.2f",
			stats.Mean(errCal), stats.Mean(errBias))
	}
}

func TestRSSMLEInField(t *testing.T) {
	s, nodes := sampler(9, 6)
	m, _ := NewRSSMLE(fieldRect, nodes, s.Model, 4)
	rng := randx.New(3)
	for trial := 0; trial < 30; trial++ {
		pos := geom.Pt(rng.Uniform(0, 100), rng.Uniform(0, 100))
		if est := m.LocalizeGroup(s.Sample(pos, 3, rng.SplitN("t", trial))); !fieldRect.Contains(est) {
			t.Fatalf("estimate %v outside field", est)
		}
	}
}
