package baseline

import (
	"fmt"
	"math"

	"fttt/internal/geom"
	"fttt/internal/rf"
	"fttt/internal/sampling"
)

// WCL is the classic weighted-centroid localizer: the estimate is the
// RSS-weighted mean of the reporting sensors' positions. It is the
// cheapest range-free baseline and a common lower bar in the WSN
// localization literature; FTTT should beat it whenever the geometry of
// the uncertain areas carries information the centroid throws away.
type WCL struct {
	Field geom.Rect
	Nodes []geom.Point
	// Exponent g tunes how sharply weights follow received power;
	// g = 1 uses linear power weights (the usual choice).
	Exponent float64
}

// NewWCL builds a weighted-centroid localizer with exponent 1.
func NewWCL(field geom.Rect, nodes []geom.Point) (*WCL, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("baseline: WCL needs nodes")
	}
	return &WCL{Field: field, Nodes: nodes, Exponent: 1}, nil
}

// LocalizeGroup estimates the target position from one grouping sampling.
// With no reports it returns the field centre.
func (w *WCL) LocalizeGroup(g *sampling.Group) geom.Point {
	means, ids := g.MeanRSS()
	if len(ids) == 0 {
		return w.Field.Center()
	}
	// Convert dBm to linear power so weights are positive and the
	// strongest reporter dominates proportionally.
	var sx, sy, sw float64
	for i, id := range ids {
		p := math.Pow(10, means[i]/10)
		if w.Exponent != 1 {
			p = math.Pow(p, w.Exponent)
		}
		sx += p * w.Nodes[id].X
		sy += p * w.Nodes[id].Y
		sw += p
	}
	if sw <= 0 {
		return w.Field.Center()
	}
	return w.Field.Clamp(geom.Pt(sx/sw, sy/sw))
}

// PkNN is a probabilistic k-nearest-neighbour tracker in the spirit of
// Ren et al. [8]: instead of trusting the single strongest reporter, it
// weights the k strongest by the probability that each is the true
// nearest node given the noisy RSS, and returns the probability-weighted
// centroid. The weight model is a softmax of mean RSS with temperature
// σ_X·√2 — the scale of a pairwise comparison's noise — which is the
// closed-form two-node "which is nearer?" posterior extended to k nodes.
type PkNN struct {
	Field geom.Rect
	Nodes []geom.Point
	Model rf.Model
	// K is how many strongest reporters participate.
	K int
}

// NewPkNN builds the tracker; k is clamped to the node count at query
// time.
func NewPkNN(field geom.Rect, nodes []geom.Point, model rf.Model, k int) (*PkNN, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("baseline: PkNN needs nodes")
	}
	if k < 1 {
		return nil, fmt.Errorf("baseline: PkNN needs k ≥ 1, got %d", k)
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &PkNN{Field: field, Nodes: nodes, Model: model, K: k}, nil
}

// LocalizeGroup estimates the target position from one grouping sampling.
func (p *PkNN) LocalizeGroup(g *sampling.Group) geom.Point {
	means, ids := g.MeanRSS()
	if len(ids) == 0 {
		return p.Field.Center()
	}
	// Select the K strongest reporters.
	type nr struct {
		id  int
		rss float64
	}
	top := make([]nr, 0, len(ids))
	for i, id := range ids {
		top = append(top, nr{id: id, rss: means[i]})
	}
	for a := 1; a < len(top); a++ { // insertion sort by descending RSS
		for b := a; b > 0 && top[b].rss > top[b-1].rss; b-- {
			top[b], top[b-1] = top[b-1], top[b]
		}
	}
	k := p.K
	if k > len(top) {
		k = len(top)
	}
	top = top[:k]

	// Softmax over RSS with the pairwise-comparison noise temperature.
	tau := p.Model.SigmaX * math.Sqrt2
	if tau <= 0 {
		tau = 1
	}
	ref := top[0].rss
	var sx, sy, sw float64
	for _, t := range top {
		w := math.Exp((t.rss - ref) / tau)
		sx += w * p.Nodes[t.id].X
		sy += w * p.Nodes[t.id].Y
		sw += w
	}
	return p.Field.Clamp(geom.Pt(sx/sw, sy/sw))
}

// Trilateration is the textbook range-based baseline: invert the mean
// path-loss model to per-node distance estimates, then solve the
// nonlinear least-squares position by Gauss-Newton iterations seeded at
// the weighted centroid. It represents the "range-based tracking with
// additional assumptions" family of Sec. 2 [11][12][13] — accurate when
// the noise is small, brittle when it is not.
type Trilateration struct {
	Field geom.Rect
	Nodes []geom.Point
	Model rf.Model
	// Iterations bounds the Gauss-Newton refinement (default 12).
	Iterations int

	wcl *WCL
}

// NewTrilateration builds the range-based localizer.
func NewTrilateration(field geom.Rect, nodes []geom.Point, model rf.Model) (*Trilateration, error) {
	if len(nodes) < 3 {
		return nil, fmt.Errorf("baseline: trilateration needs ≥3 nodes, got %d", len(nodes))
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	w, err := NewWCL(field, nodes)
	if err != nil {
		return nil, err
	}
	return &Trilateration{Field: field, Nodes: nodes, Model: model, Iterations: 12, wcl: w}, nil
}

// LocalizeGroup estimates the target position from one grouping sampling.
// With fewer than three reports it falls back to the weighted centroid.
func (tr *Trilateration) LocalizeGroup(g *sampling.Group) geom.Point {
	means, ids := g.MeanRSS()
	if len(ids) < 3 {
		return tr.wcl.LocalizeGroup(g)
	}
	dists := make([]float64, len(ids))
	for i := range ids {
		dists[i] = tr.Model.InvertMeanRSS(means[i])
	}
	// Gauss-Newton on Σ (||x - p_i|| - d_i)².
	est := tr.wcl.LocalizeGroup(g)
	iters := tr.Iterations
	if iters <= 0 {
		iters = 12
	}
	for it := 0; it < iters; it++ {
		var jtj00, jtj01, jtj11, jtr0, jtr1 float64
		for i, id := range ids {
			p := tr.Nodes[id]
			dx, dy := est.X-p.X, est.Y-p.Y
			r := math.Hypot(dx, dy)
			if r < 1e-6 {
				continue
			}
			res := r - dists[i]
			jx, jy := dx/r, dy/r
			jtj00 += jx * jx
			jtj01 += jx * jy
			jtj11 += jy * jy
			jtr0 += jx * res
			jtr1 += jy * res
		}
		det := jtj00*jtj11 - jtj01*jtj01
		if math.Abs(det) < 1e-12 {
			break
		}
		// Solve JᵀJ Δ = Jᵀr and step.
		dx := (jtj11*jtr0 - jtj01*jtr1) / det
		dy := (jtj00*jtr1 - jtj01*jtr0) / det
		est = geom.Pt(est.X-dx, est.Y-dy)
		if math.Hypot(dx, dy) < 1e-4 {
			break
		}
	}
	return tr.Field.Clamp(est)
}
