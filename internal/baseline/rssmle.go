package baseline

import (
	"fmt"
	"math"

	"fttt/internal/geom"
	"fttt/internal/rf"
	"fttt/internal/sampling"
)

// RSSMLE is the strongest classical comparator: a grid-search maximum
// likelihood localizer over the raw RSS values. For a candidate cell x,
// the log-likelihood of the reported mean RSS under eq. 1 is (up to
// constants) −Σ_i (rss_i − MeanRSS(|x − p_i|))²; the estimate is the
// best cell's centre. Unlike the sequence/face methods it consumes the
// absolute RSS magnitudes, so it is sensitive to P0 calibration errors —
// the Bias knob injects such a miscalibration for robustness studies.
type RSSMLE struct {
	Field geom.Rect
	Nodes []geom.Point
	Model rf.Model
	// CellSize is the search-grid resolution in metres.
	CellSize float64
	// Bias is an additive calibration error (dB) applied to the model's
	// predictions, simulating a miscalibrated P0.
	Bias float64

	cols, rows int
}

// NewRSSMLE builds the localizer.
func NewRSSMLE(field geom.Rect, nodes []geom.Point, model rf.Model, cellSize float64) (*RSSMLE, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("baseline: RSSMLE needs nodes")
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if cellSize <= 0 {
		return nil, fmt.Errorf("baseline: non-positive cell size %v", cellSize)
	}
	cols := int(field.Width()/cellSize + 0.5)
	rows := int(field.Height()/cellSize + 0.5)
	if cols < 1 || rows < 1 {
		return nil, fmt.Errorf("baseline: cell size %v too large", cellSize)
	}
	return &RSSMLE{
		Field: field, Nodes: nodes, Model: model, CellSize: cellSize,
		cols: cols, rows: rows,
	}, nil
}

// LocalizeGroup estimates the target position from one grouping sampling.
func (m *RSSMLE) LocalizeGroup(g *sampling.Group) geom.Point {
	means, ids := g.MeanRSS()
	if len(ids) == 0 {
		return m.Field.Center()
	}
	best := math.Inf(1)
	bestPt := m.Field.Center()
	for r := 0; r < m.rows; r++ {
		for c := 0; c < m.cols; c++ {
			x := geom.Pt(
				m.Field.Min.X+(float64(c)+0.5)*m.CellSize,
				m.Field.Min.Y+(float64(r)+0.5)*m.CellSize,
			)
			var ss float64
			for i, id := range ids {
				pred := m.Model.MeanRSS(x.Dist(m.Nodes[id])) + m.Bias
				d := means[i] - pred
				ss += d * d
				if ss >= best {
					break // prune: already worse
				}
			}
			if ss < best {
				best = ss
				bestPt = x
			}
		}
	}
	return bestPt
}
