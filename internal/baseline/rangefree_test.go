package baseline

import (
	"math"
	"testing"

	"fttt/internal/geom"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/sampling"
	"fttt/internal/stats"
)

func emptyGroup(n int) *sampling.Group {
	return &sampling.Group{
		RSS:      [][]float64{make([]float64, n)},
		Reported: make([]bool, n),
	}
}

func TestNewWCLValidation(t *testing.T) {
	if _, err := NewWCL(fieldRect, nil); err == nil {
		t.Error("no nodes should fail")
	}
	if _, err := NewWCL(fieldRect, []geom.Point{geom.Pt(1, 1)}); err != nil {
		t.Errorf("valid WCL rejected: %v", err)
	}
}

func TestWCLNoiselessBias(t *testing.T) {
	// WCL pulls toward the strongest reporter; with a target on a sensor
	// the estimate is very close to it.
	s, nodes := sampler(16, 0)
	w, _ := NewWCL(fieldRect, nodes)
	pos := nodes[5]
	g := s.Sample(pos, 5, randx.New(1))
	if est := w.LocalizeGroup(g); est.Dist(pos) > 10 {
		t.Errorf("WCL estimate %v far from target on sensor %v", est, pos)
	}
}

func TestWCLEmptyGroup(t *testing.T) {
	_, nodes := sampler(4, 6)
	w, _ := NewWCL(fieldRect, nodes)
	if est := w.LocalizeGroup(emptyGroup(4)); est != fieldRect.Center() {
		t.Errorf("empty group should give field centre, got %v", est)
	}
}

func TestWCLInField(t *testing.T) {
	s, nodes := sampler(9, 6)
	w, _ := NewWCL(fieldRect, nodes)
	rng := randx.New(2)
	for i := 0; i < 50; i++ {
		pos := geom.Pt(rng.Uniform(0, 100), rng.Uniform(0, 100))
		if est := w.LocalizeGroup(s.Sample(pos, 3, rng.SplitN("t", i))); !fieldRect.Contains(est) {
			t.Fatalf("estimate %v outside field", est)
		}
	}
}

func TestNewPkNNValidation(t *testing.T) {
	_, nodes := sampler(9, 6)
	if _, err := NewPkNN(fieldRect, nil, rf.Default(), 3); err == nil {
		t.Error("no nodes should fail")
	}
	if _, err := NewPkNN(fieldRect, nodes, rf.Default(), 0); err == nil {
		t.Error("k=0 should fail")
	}
	bad := rf.Default()
	bad.Beta = -1
	if _, err := NewPkNN(fieldRect, nodes, bad, 3); err == nil {
		t.Error("bad model should fail")
	}
}

func TestPkNNBeatsWCLUnderNoise(t *testing.T) {
	// PkNN's probability weighting should be at least competitive with
	// plain WCL on noisy samples.
	s, nodes := sampler(16, 6)
	w, _ := NewWCL(fieldRect, nodes)
	p, _ := NewPkNN(fieldRect, nodes, rf.Default(), 4)
	rng := randx.New(3)
	var errW, errP []float64
	for i := 0; i < 200; i++ {
		pos := geom.Pt(rng.Uniform(15, 85), rng.Uniform(15, 85))
		g := s.Sample(pos, 5, rng.SplitN("t", i))
		errW = append(errW, w.LocalizeGroup(g).Dist(pos))
		errP = append(errP, p.LocalizeGroup(g).Dist(pos))
	}
	if stats.Mean(errP) > stats.Mean(errW)*1.25 {
		t.Errorf("PkNN %.2f should be competitive with WCL %.2f",
			stats.Mean(errP), stats.Mean(errW))
	}
}

func TestPkNNKClamped(t *testing.T) {
	s, nodes := sampler(4, 6)
	p, _ := NewPkNN(fieldRect, nodes, rf.Default(), 50) // k > n
	g := s.Sample(geom.Pt(50, 50), 3, randx.New(4))
	if est := p.LocalizeGroup(g); !fieldRect.Contains(est) {
		t.Errorf("estimate %v invalid with clamped k", est)
	}
}

func TestPkNNEmptyGroup(t *testing.T) {
	_, nodes := sampler(4, 6)
	p, _ := NewPkNN(fieldRect, nodes, rf.Default(), 3)
	if est := p.LocalizeGroup(emptyGroup(4)); est != fieldRect.Center() {
		t.Errorf("empty group should give field centre, got %v", est)
	}
}

func TestNewTrilaterationValidation(t *testing.T) {
	_, nodes := sampler(9, 6)
	if _, err := NewTrilateration(fieldRect, nodes[:2], rf.Default()); err == nil {
		t.Error("2 nodes should fail")
	}
	bad := rf.Default()
	bad.SigmaX = -1
	if _, err := NewTrilateration(fieldRect, nodes, bad); err == nil {
		t.Error("bad model should fail")
	}
	if _, err := NewTrilateration(fieldRect, nodes, rf.Default()); err != nil {
		t.Errorf("valid trilateration rejected: %v", err)
	}
}

func TestTrilaterationNoiselessExact(t *testing.T) {
	// Zero noise: inverted ranges are exact, Gauss-Newton converges to
	// the true position.
	s, nodes := sampler(9, 0)
	tr, _ := NewTrilateration(fieldRect, nodes, s.Model)
	rng := randx.New(5)
	for i := 0; i < 20; i++ {
		pos := geom.Pt(rng.Uniform(10, 90), rng.Uniform(10, 90))
		g := s.Sample(pos, 3, rng.SplitN("t", i))
		est := tr.LocalizeGroup(g)
		if est.Dist(pos) > 0.5 {
			t.Fatalf("noiseless trilateration err %.3f at %v (est %v)", est.Dist(pos), pos, est)
		}
	}
}

func TestTrilaterationFallbackFewReports(t *testing.T) {
	_, nodes := sampler(4, 6)
	tr, _ := NewTrilateration(fieldRect, nodes, rf.Default())
	g := &sampling.Group{
		RSS:      [][]float64{{-50, -60, 0, 0}},
		Reported: []bool{true, true, false, false},
	}
	if est := tr.LocalizeGroup(g); !fieldRect.Contains(est) {
		t.Errorf("2-report fallback gave %v", est)
	}
}

func TestTrilaterationStaysInField(t *testing.T) {
	s, nodes := sampler(9, 6)
	tr, _ := NewTrilateration(fieldRect, nodes, s.Model)
	rng := randx.New(6)
	for i := 0; i < 100; i++ {
		pos := geom.Pt(rng.Uniform(0, 100), rng.Uniform(0, 100))
		est := tr.LocalizeGroup(s.Sample(pos, 3, rng.SplitN("t", i)))
		if !fieldRect.Contains(est) || math.IsNaN(est.X) {
			t.Fatalf("estimate %v invalid", est)
		}
	}
}

func TestTrilaterationDegradesGracefullyWithNoise(t *testing.T) {
	// Under Table 1 noise the inverted ranges are badly biased; the
	// estimate must stay finite and bounded, not explode.
	s, nodes := sampler(16, 6)
	tr, _ := NewTrilateration(fieldRect, nodes, s.Model)
	rng := randx.New(7)
	var errs []float64
	for i := 0; i < 100; i++ {
		pos := geom.Pt(rng.Uniform(15, 85), rng.Uniform(15, 85))
		errs = append(errs, tr.LocalizeGroup(s.Sample(pos, 5, rng.SplitN("t", i))).Dist(pos))
	}
	if m := stats.Mean(errs); m > 60 {
		t.Errorf("noisy trilateration mean error %.1f exploded", m)
	}
}
