// Package arrangement provides exact computational-geometry counts for
// the uncertain-boundary structure: every sensor pair contributes two
// Apollonius circles (eq. 4), and the number of faces their arrangement
// creates is the paper's O(n⁴) storage bound (Sec. 4.4). The package
// counts faces analytically by sequential insertion — a circle crossed
// in p points by the circles already inserted adds p faces (or 1 if
// disjoint from all of them) — which is exact in general position, and
// lets the FaceComplexity experiment validate the approximate grid
// division's face counts against ground truth.
package arrangement

import (
	"fmt"

	"fttt/internal/geom"
	"fttt/internal/vector"
)

// BoundaryCircles returns the two Apollonius circles of every node pair
// for uncertainty constant c > 1, in pair-enumeration order (Def. 5):
// for pair (i, j) the circle around j (ratio c, "firmly nearer j"
// boundary) comes first, then its mirror image around i.
func BoundaryCircles(nodes []geom.Point, c float64) ([]geom.Circle, error) {
	if c <= 1 {
		return nil, fmt.Errorf("arrangement: need C > 1, got %v", c)
	}
	n := len(nodes)
	out := make([]geom.Circle, 0, 2*vector.NumPairs(n))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			// d(x, i) = c·d(x, j): the boundary enclosing j.
			cj, ok := geom.Apollonius(nodes[i], nodes[j], c)
			if !ok {
				return nil, fmt.Errorf("arrangement: degenerate pair (%d,%d)", i, j)
			}
			// d(x, j) = c·d(x, i): the mirror boundary enclosing i.
			ci, ok := geom.Apollonius(nodes[j], nodes[i], c)
			if !ok {
				return nil, fmt.Errorf("arrangement: degenerate pair (%d,%d)", i, j)
			}
			out = append(out, cj, ci)
		}
	}
	return out, nil
}

// FaceCount returns the number of faces (including the unbounded one)
// that the given circles create in the plane, assuming general position
// (no tangencies, no three circles through one point — true almost
// surely for random deployments). Sequential insertion: the first circle
// makes 2 faces; each later circle crossed in p > 0 points adds p faces,
// and a circle disjoint from all earlier ones adds 1.
func FaceCount(circles []geom.Circle) int {
	if len(circles) == 0 {
		return 1
	}
	faces := 2
	for i := 1; i < len(circles); i++ {
		p := 0
		for j := 0; j < i; j++ {
			p += len(geom.CircleCircleIntersect(circles[i], circles[j]))
		}
		if p == 0 {
			faces++
		} else {
			faces += p
		}
	}
	return faces
}

// Stats summarises the exact arrangement of a deployment's boundaries.
type Stats struct {
	Nodes         int
	Circles       int
	Intersections int
	Faces         int // includes the unbounded face
}

// Analyze computes the exact arrangement statistics for a deployment.
func Analyze(nodes []geom.Point, c float64) (Stats, error) {
	circles, err := BoundaryCircles(nodes, c)
	if err != nil {
		return Stats{}, err
	}
	inter := 0
	for i := range circles {
		for j := i + 1; j < len(circles); j++ {
			inter += len(geom.CircleCircleIntersect(circles[i], circles[j]))
		}
	}
	return Stats{
		Nodes:         len(nodes),
		Circles:       len(circles),
		Intersections: inter,
		Faces:         FaceCount(circles),
	}, nil
}

// MaxFaces returns the general-position upper bound for m circles:
// m² − m + 2 (every pair crossing twice).
func MaxFaces(m int) int {
	if m <= 0 {
		return 1
	}
	return m*m - m + 2
}
