package arrangement

import (
	"testing"

	"fttt/internal/deploy"
	"fttt/internal/geom"
	"fttt/internal/randx"
)

func TestFaceCountKnownConfigurations(t *testing.T) {
	tests := []struct {
		name    string
		circles []geom.Circle
		want    int
	}{
		{"empty plane", nil, 1},
		{"one circle", []geom.Circle{{C: geom.Pt(0, 0), R: 1}}, 2},
		{"two disjoint", []geom.Circle{
			{C: geom.Pt(0, 0), R: 1}, {C: geom.Pt(10, 0), R: 1},
		}, 3},
		{"two crossing", []geom.Circle{
			{C: geom.Pt(0, 0), R: 2}, {C: geom.Pt(2, 0), R: 2},
		}, 4},
		{"nested", []geom.Circle{
			{C: geom.Pt(0, 0), R: 5}, {C: geom.Pt(0, 0.1), R: 1},
		}, 3},
		{"three mutually crossing (generic)", []geom.Circle{
			{C: geom.Pt(0, 0), R: 2}, {C: geom.Pt(2, 0), R: 2}, {C: geom.Pt(1, 1.5), R: 2},
		}, 8},
	}
	for _, tt := range tests {
		if got := FaceCount(tt.circles); got != tt.want {
			t.Errorf("%s: FaceCount = %d, want %d", tt.name, got, tt.want)
		}
	}
}

func TestMaxFaces(t *testing.T) {
	// m circles pairwise crossing: m²−m+2.
	if got := MaxFaces(0); got != 1 {
		t.Errorf("MaxFaces(0) = %d", got)
	}
	if got := MaxFaces(1); got != 2 {
		t.Errorf("MaxFaces(1) = %d", got)
	}
	if got := MaxFaces(3); got != 8 {
		t.Errorf("MaxFaces(3) = %d", got)
	}
}

func TestFaceCountNeverExceedsMax(t *testing.T) {
	rng := randx.New(1)
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(10)
		circles := make([]geom.Circle, m)
		for i := range circles {
			circles[i] = geom.Circle{
				C: geom.Pt(rng.Uniform(0, 50), rng.Uniform(0, 50)),
				R: rng.Uniform(1, 20),
			}
		}
		if got := FaceCount(circles); got > MaxFaces(m) || got < 2 {
			t.Fatalf("FaceCount = %d outside [2, %d] for %d circles", got, MaxFaces(m), m)
		}
	}
}

func TestBoundaryCircles(t *testing.T) {
	nodes := []geom.Point{geom.Pt(30, 50), geom.Pt(70, 50)}
	circles, err := BoundaryCircles(nodes, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(circles) != 2 {
		t.Fatalf("got %d circles for one pair", len(circles))
	}
	// Mirror symmetry across the bisector x=50.
	if circles[0].R != circles[1].R {
		t.Errorf("mirror radii differ: %v vs %v", circles[0].R, circles[1].R)
	}
	if circles[0].C.X+circles[1].C.X != 100 {
		t.Errorf("centres not mirrored: %v, %v", circles[0].C, circles[1].C)
	}
	// The c-ratio circle encloses the far node j (first of the pair).
	if !circles[0].Contains(nodes[1]) {
		t.Error("first circle should enclose node j")
	}
	if !circles[1].Contains(nodes[0]) {
		t.Error("second circle should enclose node i")
	}
}

func TestBoundaryCirclesErrors(t *testing.T) {
	nodes := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}
	if _, err := BoundaryCircles(nodes, 1); err == nil {
		t.Error("C=1 should fail")
	}
	if _, err := BoundaryCircles(nodes, 0.5); err == nil {
		t.Error("C<1 should fail")
	}
}

func TestAnalyzeGrowsLikeN4(t *testing.T) {
	// The face count should grow superlinearly in n — the O(n⁴) claim.
	counts := make([]int, 0, 3)
	for _, n := range []int{4, 6, 8} {
		dep := deploy.Random(geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100)), n, randx.New(3))
		st, err := Analyze(dep.Positions(), 1.19)
		if err != nil {
			t.Fatal(err)
		}
		if st.Circles != n*(n-1) {
			t.Fatalf("n=%d: %d circles, want %d", n, st.Circles, n*(n-1))
		}
		counts = append(counts, st.Faces)
	}
	if !(counts[0] < counts[1] && counts[1] < counts[2]) {
		t.Fatalf("face counts not increasing: %v", counts)
	}
	// Superlinear: doubling n (4→8) should much more than double faces.
	if counts[2] < counts[0]*4 {
		t.Errorf("face growth too slow for O(n⁴): %v", counts)
	}
}

func TestAnalyzeSinglePair(t *testing.T) {
	nodes := []geom.Point{geom.Pt(30, 50), geom.Pt(70, 50)}
	st, err := Analyze(nodes, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	// Two disjoint mirror circles: 3 faces, no intersections.
	if st.Faces != 3 || st.Intersections != 0 {
		t.Errorf("single pair stats = %+v, want 3 faces, 0 intersections", st)
	}
}
