// Allocation-regression gates for the localization hot path (run by
// `make check`). The matcher owns reusable scratch (epoch-stamped
// visited slice, recycled frontier heap), so a warmed-up Heuristic.Match
// performs zero allocations; LocalizeGroup on top of it allocates only
// the sampling vector. These tests pin those budgets so a stray
// per-call map or heap box cannot creep back in unnoticed.
package fttt_test

import (
	"context"
	"testing"

	"fttt/internal/core"
	"fttt/internal/deploy"
	"fttt/internal/field"
	"fttt/internal/geom"
	"fttt/internal/match"
	"fttt/internal/obs"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/sampling"
	"fttt/internal/serve"
	"fttt/internal/vector"
)

func skipUnderRace(t *testing.T) {
	t.Helper()
	if raceEnabled {
		t.Skip("race instrumentation allocates; gate runs in the non-race pass")
	}
}

func TestHeuristicMatchZeroAllocs(t *testing.T) {
	skipUnderRace(t)
	fieldRect := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	dep := deploy.Random(fieldRect, 20, randx.New(6))
	rc, err := field.NewRatioClassifier(dep.Positions(), rf.Default().UncertaintyC(1))
	if err != nil {
		t.Fatal(err)
	}
	div, err := field.Divide(fieldRect, rc, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := &sampling.Sampler{Model: rf.Default(), Nodes: dep.Positions(), Range: 40, Epsilon: 1}
	m := &match.Heuristic{Div: div}
	// A spread of probes so the gate holds across cold starts, warm
	// starts and frontier growth, not just one lucky vector.
	rng := randx.New(9)
	type probe struct {
		v    vector.Vector
		prev *field.Face
	}
	probes := make([]probe, 16)
	for i := range probes {
		p := geom.Pt(rng.Uniform(5, 95), rng.Uniform(5, 95))
		probes[i].v = s.Sample(p, 5, rng.SplitN("probe", i)).Vector()
		if i%3 != 0 {
			probes[i].prev = div.FaceAt(p)
		}
	}
	for _, pr := range probes { // warm up: grow seen + frontier scratch
		m.Match(pr.v, pr.prev)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		pr := probes[i%len(probes)]
		m.Match(pr.v, pr.prev)
		i++
	})
	if allocs != 0 {
		t.Errorf("warmed-up Heuristic.Match allocates %.1f objects/op, want 0", allocs)
	}
}

// TestMatchBatchZeroAllocs pins the batch matcher's steady-state
// contract: a warmed-up MatchBatch pass over a mixed probe spread (cold
// + warm starts, ternary Basic vectors) performs zero heap allocations
// when the destination slice has capacity — the SoA kernel owns all its
// scratch.
func TestMatchBatchZeroAllocs(t *testing.T) {
	skipUnderRace(t)
	fieldRect := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	dep := deploy.Random(fieldRect, 20, randx.New(6))
	rc, err := field.NewRatioClassifier(dep.Positions(), rf.Default().UncertaintyC(1))
	if err != nil {
		t.Fatal(err)
	}
	div, err := field.Divide(fieldRect, rc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if div.SoA() == nil {
		t.Fatal("ternary division carries no SoA store")
	}
	s := &sampling.Sampler{Model: rf.Default(), Nodes: dep.Positions(), Range: 40, Epsilon: 1}
	rng := randx.New(9)
	vs := make([]vector.Vector, 16)
	prevs := make([]*field.Face, 16)
	for i := range vs {
		p := geom.Pt(rng.Uniform(5, 95), rng.Uniform(5, 95))
		vs[i] = s.Sample(p, 5, rng.SplitN("probe", i)).Vector()
		if i%3 != 0 {
			prevs[i] = div.FaceAt(p)
		}
	}
	m := &match.Batch{Div: div, Incremental: true}
	out := m.MatchBatch(nil, vs, prevs) // warm scratch + result capacity
	allocs := testing.AllocsPerRun(200, func() {
		out = m.MatchBatch(out[:0], vs, prevs)
	})
	if allocs != 0 {
		t.Errorf("warmed-up MatchBatch allocates %.1f objects/op, want 0", allocs)
	}
}

func TestLocalizeGroupAllocBudget(t *testing.T) {
	skipUnderRace(t)
	fieldRect := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	dep := deploy.Random(fieldRect, 20, randx.New(6))
	tr, err := core.New(core.Config{
		Field: fieldRect, Nodes: dep.Positions(), Model: rf.Default(),
		Epsilon: 1, SamplingTimes: 5, Range: 40, CellSize: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := &sampling.Sampler{Model: rf.Default(), Nodes: dep.Positions(), Range: 40, Epsilon: 1}
	rng := randx.New(10)
	groups := make([]*sampling.Group, 16)
	for i := range groups {
		p := geom.Pt(rng.Uniform(5, 95), rng.Uniform(5, 95))
		groups[i] = s.Sample(p, 5, rng.SplitN("g", i))
	}
	for _, g := range groups {
		tr.LocalizeGroup(g)
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		tr.LocalizeGroup(groups[i%len(groups)])
		i++
	})
	// One allocation for the sampling vector (Group.Vector); the matcher
	// itself must contribute none.
	const budget = 2
	if allocs > budget {
		t.Errorf("LocalizeGroup allocates %.1f objects/op, budget %d", allocs, budget)
	}
}

// TestTraceNilPathZeroAllocs pins the tracing-off contract: with a nil
// Tracer or nil *Recorder, every instrumentation entry point must cost
// one pointer comparison and zero allocations, so always-on call sites
// in the localization hot path stay free when no recorder is attached.
func TestTraceNilPathZeroAllocs(t *testing.T) {
	skipUnderRace(t)
	var rec *obs.Recorder
	parent := obs.SpanRef{}
	allocs := testing.AllocsPerRun(200, func() {
		obs.StartSpan(nil, "core", "localize")()
		obs.Emit(nil, "core", "degraded", 1)
		sp := rec.Start(parent, "core", "localize")
		sp.Attr("reported", 5)
		sp.AttrStr("target", "t")
		sp.Flag("degraded", true)
		sp.End()
		rec.RecordEvent(parent, "faults", "report_dropped", 1)
		rec.Link(parent, parent)
		_ = rec.Records()
	})
	if allocs != 0 {
		t.Errorf("nil-tracer/nil-recorder path allocates %.1f objects/op, want 0", allocs)
	}
}

// serveSession stands up an in-process serving session on the paper's
// default-shaped field for the serving-path gates below.
func serveSession(tb testing.TB) *serve.Session {
	tb.Helper()
	srv := serve.New(serve.Config{})
	sess, err := srv.CreateSession(serve.SessionConfig{
		Seed:      6,
		Field:     &serve.RectWire{Max: serve.PointWire{X: 60, Y: 60}},
		GridNodes: 9,
		CellSize:  3,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { srv.CloseSession(sess.ID()) })
	return sess
}

// TestServeLocalizeAllocBudget gates the full serving path — admission,
// sequence assignment, substream derivation, the batcher round-trip and
// result fan-out — so per-request garbage (a stray closure, a
// per-request timer, JSON marshalling with no SSE subscribers) cannot
// creep into the hot path unnoticed.
func TestServeLocalizeAllocBudget(t *testing.T) {
	skipUnderRace(t)
	sess := serveSession(t)
	ctx := context.Background()
	rng := randx.New(11)
	points := make([]geom.Point, 16)
	for i := range points {
		points[i] = geom.Pt(rng.Uniform(5, 55), rng.Uniform(5, 55))
	}
	for _, p := range points { // warm up tracker + batcher scratch
		if _, err := sess.Localize(ctx, "bench", p); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := sess.Localize(ctx, "bench", points[i%len(points)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	// Dominated by deterministic substream derivation (every randx split
	// builds a fresh math/rand source) plus the simulated sampling
	// matrix; the serving wrapper itself adds only the request struct,
	// done channel and batch slices. Headroom over the measured ~84; the
	// point is catching order-of-magnitude regressions.
	const budget = 120
	if allocs > budget {
		t.Errorf("served Localize allocates %.1f objects/op, budget %d", allocs, budget)
	}
}

// BenchmarkServeLocalize measures the in-process serving path end to
// end (no HTTP): admission through batcher to delivered estimate.
func BenchmarkServeLocalize(b *testing.B) {
	sess := serveSession(b)
	ctx := context.Background()
	rng := randx.New(11)
	points := make([]geom.Point, 16)
	for i := range points {
		points[i] = geom.Pt(rng.Uniform(5, 55), rng.Uniform(5, 55))
	}
	if _, err := sess.Localize(ctx, "bench", points[0]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Localize(ctx, "bench", points[i%len(points)]); err != nil {
			b.Fatal(err)
		}
	}
}
