package fttt_test

import (
	"math"
	"testing"

	"fttt"
)

func TestQuickstartFlow(t *testing.T) {
	field := fttt.NewRect(fttt.Pt(0, 0), fttt.Pt(100, 100))
	dep := fttt.DeployGrid(field, 16)
	cfg := fttt.DefaultConfig(dep)
	cfg.CellSize = 2 // keep the test fast
	tr, err := fttt.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	est := tr.Localize(fttt.Pt(42, 58), fttt.NewStream(1))
	if !field.Contains(est.Pos) {
		t.Errorf("estimate %v outside field", est.Pos)
	}
	if est.Reported == 0 {
		t.Error("no nodes reported")
	}
}

func TestTrackOneCall(t *testing.T) {
	field := fttt.NewRect(fttt.Pt(0, 0), fttt.Pt(100, 100))
	dep := fttt.DeployRandom(field, 12, fttt.NewStream(2))
	cfg := fttt.DefaultConfig(dep)
	cfg.CellSize = 2
	mob := fttt.RandomWaypoint(field, 1, 5, 10, fttt.NewStream(3))
	trace, times := fttt.SampleTrace(mob, 10, 2)
	pts, err := fttt.Track(cfg, trace, times, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(trace) {
		t.Fatalf("tracked %d of %d points", len(pts), len(trace))
	}
	if me := fttt.MeanError(pts); math.IsNaN(me) || me <= 0 || me > 50 {
		t.Errorf("mean error %v implausible", me)
	}
}

func TestTrackLengthMismatch(t *testing.T) {
	field := fttt.NewRect(fttt.Pt(0, 0), fttt.Pt(100, 100))
	cfg := fttt.DefaultConfig(fttt.DeployGrid(field, 9))
	cfg.CellSize = 4
	trace := []fttt.Point{fttt.Pt(10, 10), fttt.Pt(20, 20), fttt.Pt(30, 30)}
	if _, err := fttt.Track(cfg, trace, []float64{0, 0.5}, 1); err == nil {
		t.Fatal("Track accepted a times slice shorter than the trace")
	}
	if _, err := fttt.Track(cfg, trace, []float64{0, 0.5, 1, 1.5}, 1); err == nil {
		t.Fatal("Track accepted a times slice longer than the trace")
	}
	// nil times stays legal: indices are used as timestamps.
	if _, err := fttt.Track(cfg, trace, nil, 1); err != nil {
		t.Fatalf("Track with nil times: %v", err)
	}
}

func TestMeanErrorEmpty(t *testing.T) {
	if got := fttt.MeanError(nil); got != 0 {
		t.Errorf("MeanError(nil) = %v", got)
	}
	if m, ok := fttt.MeanErrorOK(nil); ok || m != 0 {
		t.Errorf("MeanErrorOK(nil) = %v, %v, want 0, false", m, ok)
	}
	if m, ok := fttt.MeanErrorOK([]fttt.TrackedPoint{{Error: 3}, {Error: 5}}); !ok || m != 4 {
		t.Errorf("MeanErrorOK = %v, %v, want 4, true", m, ok)
	}
}

func TestDeployHelpers(t *testing.T) {
	field := fttt.NewRect(fttt.Pt(0, 0), fttt.Pt(100, 100))
	if got := fttt.DeployGrid(field, 9).N(); got != 9 {
		t.Errorf("grid N = %d", got)
	}
	if got := fttt.DeployCross(field, 9, 30).N(); got != 9 {
		t.Errorf("cross N = %d", got)
	}
	if got := fttt.DeployRandom(field, 7, fttt.NewStream(5)).N(); got != 7 {
		t.Errorf("random N = %d", got)
	}
}

func TestVariantsExposed(t *testing.T) {
	if fttt.Basic == fttt.Extended {
		t.Error("variants must differ")
	}
	field := fttt.NewRect(fttt.Pt(0, 0), fttt.Pt(100, 100))
	cfg := fttt.DefaultConfig(fttt.DeployGrid(field, 9))
	cfg.CellSize = 4
	cfg.Variant = fttt.Extended
	if _, err := fttt.New(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestWaypointsHelper(t *testing.T) {
	mob := fttt.Waypoints([]fttt.Point{fttt.Pt(0, 0), fttt.Pt(10, 0)}, 2)
	trace, times := fttt.SampleTrace(mob, 5, 1)
	if len(trace) != 6 || len(times) != 6 {
		t.Fatalf("trace lengths %d/%d", len(trace), len(times))
	}
	if trace[5] != fttt.Pt(10, 0) {
		t.Errorf("end = %v", trace[5])
	}
}

func TestRequiredSamplingTimesExposed(t *testing.T) {
	if got := fttt.RequiredSamplingTimes(190, 0.99); got != 16 {
		t.Errorf("RequiredSamplingTimes = %d, want 16 (paper Sec. 5.1)", got)
	}
}

func TestDefaultModelTable1(t *testing.T) {
	m := fttt.DefaultModel()
	if m.Beta != 4 || m.SigmaX != 6 {
		t.Errorf("DefaultModel β=%v σ=%v", m.Beta, m.SigmaX)
	}
}

func TestMultiTrackerFacade(t *testing.T) {
	field := fttt.NewRect(fttt.Pt(0, 0), fttt.Pt(100, 100))
	cfg := fttt.DefaultConfig(fttt.DeployGrid(field, 9))
	cfg.CellSize = 4
	multi, err := fttt.NewMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sampler := &fttt.Sampler{Model: cfg.Model, Nodes: cfg.Nodes, Range: cfg.Range}
	g := sampler.Sample(fttt.Pt(40, 60), cfg.SamplingTimes, fttt.NewStream(1))
	est, err := multi.LocalizeGroup("t1", g)
	if err != nil {
		t.Fatal(err)
	}
	if !field.Contains(est.Pos) {
		t.Errorf("estimate %v outside field", est.Pos)
	}
	if got := multi.Targets(); len(got) != 1 || got[0] != "t1" {
		t.Errorf("Targets = %v", got)
	}
}

func TestGroupFacadeVector(t *testing.T) {
	g := &fttt.Group{
		RSS:      [][]float64{{10, 5}, {11, 6}},
		Reported: []bool{true, true},
	}
	v := g.Vector()
	if v.Dim() != 1 {
		t.Fatalf("dim = %d", v.Dim())
	}
}

func TestTrackPropagatesConfigErrors(t *testing.T) {
	cfg := fttt.Config{} // invalid
	if _, err := fttt.Track(cfg, []fttt.Point{fttt.Pt(0, 0)}, nil, 1); err == nil {
		t.Error("invalid config should error")
	}
}

func TestTrackParallelFacade(t *testing.T) {
	field := fttt.NewRect(fttt.Pt(0, 0), fttt.Pt(100, 100))
	cfg := fttt.DefaultConfig(fttt.DeployGrid(field, 16))
	cfg.CellSize = 2

	const traces, steps = 4, 10
	ps := make([][]fttt.Point, traces)
	for i := range ps {
		ps[i] = make([]fttt.Point, steps)
		for j := range ps[i] {
			ps[i][j] = fttt.Pt(10+float64(i*20+j), 20+float64(i*15+j))
		}
	}

	serial, err := fttt.TrackParallel(cfg, ps, nil, 42, 1)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := fttt.TrackParallel(cfg, ps, nil, 42, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != traces || len(pooled) != traces {
		t.Fatalf("got %d/%d traces, want %d", len(serial), len(pooled), traces)
	}
	for i := range serial {
		if len(serial[i]) != steps {
			t.Fatalf("trace %d: %d points, want %d", i, len(serial[i]), steps)
		}
		for j := range serial[i] {
			if serial[i][j].Estimate != pooled[i][j].Estimate {
				t.Fatalf("trace %d step %d: serial %v vs pooled %v",
					i, j, serial[i][j].Estimate, pooled[i][j].Estimate)
			}
			if !field.Contains(serial[i][j].Estimate.Pos) {
				t.Fatalf("trace %d step %d: estimate outside field", i, j)
			}
		}
	}

	// Config errors surface before any goroutine is spawned.
	bad := cfg
	bad.CellSize = -1
	if _, err := fttt.TrackParallel(bad, ps, nil, 1, 2); err == nil {
		t.Error("invalid config should fail")
	}
	// times shape errors propagate from the core layer.
	if _, err := fttt.TrackParallel(cfg, ps, make([][]float64, 1), 1, 2); err == nil {
		t.Error("times length mismatch should fail")
	}
}
