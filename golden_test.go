package fttt_test

import (
	"math"
	"testing"

	"fttt"
)

// TestGoldenScenario pins the exact end-to-end behaviour of a fixed-seed
// scenario: any change to the RNG splitting, the sampling pipeline, the
// division, or the matcher shows up here as a numeric diff. Update the
// constants deliberately when the change is intended, never to silence
// the test.
func TestGoldenScenario(t *testing.T) {
	field := fttt.NewRect(fttt.Pt(0, 0), fttt.Pt(100, 100))
	dep := fttt.DeployGrid(field, 16)
	cfg := fttt.DefaultConfig(dep)
	cfg.CellSize = 2

	mob := fttt.Waypoints([]fttt.Point{fttt.Pt(20, 20), fttt.Pt(80, 60)}, 3)
	trace, times := fttt.SampleTrace(mob, 20, 2)
	tracked, err := fttt.Track(cfg, trace, times, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if len(tracked) != 41 {
		t.Fatalf("tracked %d points, want 41", len(tracked))
	}

	const (
		wantMean = 4.125775
		tol      = 1e-4
	)
	got := fttt.MeanError(tracked)
	if math.Abs(got-wantMean) > tol {
		t.Errorf("golden mean error = %.6f, want %.6f ± %v\n"+
			"(a deliberate behavioural change? update the constant)",
			got, wantMean, tol)
	}
}
