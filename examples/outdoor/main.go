// Outdoor reproduces the paper's Sec. 7.3 system evaluation on the
// simulated WSN substrate: 9 motes in a "+" cross on a 100×100 m
// playground, a target walking a "⊔"-shaped trace at 1-5 m/s, reports
// forwarded hop-by-hop to a base station, and both the basic and the
// extended FTTT trackers fed from the same collected groups.
package main

import (
	"fmt"

	"fttt"
	"fttt/internal/core"
	"fttt/internal/mobility"
	"fttt/internal/randx"
	"fttt/internal/stats"
	"fttt/internal/wsnnet"
)

func main() {
	field := fttt.NewRect(fttt.Pt(0, 0), fttt.Pt(100, 100))
	dep := fttt.DeployCross(field, 9, 30)
	bs := fttt.Pt(30, 30)
	root := randx.New(2012)

	net, err := wsnnet.New(wsnnet.Config{
		Nodes:        dep.Positions(),
		BaseStation:  bs,
		Model:        fttt.DefaultModel(),
		SensingRange: 40,
		CommRange:    45,
		HopLoss:      0.05,  // 5% per-hop packet loss
		HopDelay:     0.002, // 2 ms per hop
		ReportBits:   256,
		Epsilon:      1,
	})
	if err != nil {
		panic(err)
	}

	cfg := fttt.DefaultConfig(dep)
	cfg.CellSize = 1
	basic, err := core.New(cfg)
	if err != nil {
		panic(err)
	}
	extCfg := cfg
	extCfg.Variant = fttt.Extended
	extended, err := core.NewWithDivision(extCfg, basic.Division())
	if err != nil {
		panic(err)
	}

	// The "⊔" trace: down the left, across the bottom, up the right.
	waypoints := mobility.SquareWave(field, 25)
	walk := mobility.VariableSpeedWaypoints(waypoints, 1, 5, root.Split("walk"))
	dur, _ := mobility.Duration(walk)
	tps := mobility.Sample(walk, dur, 2)

	var basicErr, extErr []float64
	heard, delivered := 0, 0
	for i, tp := range tps {
		group, st := net.CollectRound(tp.Pos, cfg.SamplingTimes, root.SplitN("round", i))
		heard += st.Heard
		delivered += st.Delivered
		be := basic.LocalizeGroup(group)
		ee := extended.LocalizeGroup(group)
		basicErr = append(basicErr, be.Pos.Dist(tp.Pos))
		extErr = append(extErr, ee.Pos.Dist(tp.Pos))
	}

	fmt.Printf("outdoor walk: %.0f s, %d localization rounds\n", dur, len(tps))
	fmt.Printf("network: %d/%d reports delivered (%.1f%%), mean hops %.2f, energy %.2f mJ\n",
		delivered, heard, 100*float64(delivered)/float64(heard),
		net.MeanHopCount(), total(net.Energy)*1e3)
	b, e := stats.Summarize(basicErr), stats.Summarize(extErr)
	fmt.Printf("basic FTTT:    mean=%.2fm stddev=%.2fm max=%.2fm\n", b.Mean, b.StdDev, b.Max)
	fmt.Printf("extended FTTT: mean=%.2fm stddev=%.2fm max=%.2fm\n", e.Mean, e.StdDev, e.Max)
	if e.StdDev < b.StdDev {
		fmt.Println("extended FTTT smooths the trajectory (lower deviation), as in Fig. 13(d)")
	}
}

func total(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
