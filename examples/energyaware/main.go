// Energyaware runs the complete online system — WSN substrate with a
// contention MAC and clustering, duty-cycled collection focused on the
// previous estimate, the FTTT tracker, and a Kalman output smoother —
// through the pipeline service, streaming estimates as they are
// produced. It contrasts total energy and accuracy against the naive
// always-on, unsmoothed configuration.
package main

import (
	"fmt"

	"fttt"
	"fttt/internal/core"
	"fttt/internal/filter"
	"fttt/internal/mobility"
	"fttt/internal/pipeline"
	"fttt/internal/randx"
	"fttt/internal/wsnnet"
)

func main() {
	field := fttt.NewRect(fttt.Pt(0, 0), fttt.Pt(100, 100))
	dep := fttt.DeployRandom(field, 24, fttt.NewStream(7))
	cfg := fttt.DefaultConfig(dep)
	cfg.CellSize = 2
	tracker, err := core.New(cfg)
	if err != nil {
		panic(err)
	}

	mkNet := func() *wsnnet.Network {
		net, err := wsnnet.New(wsnnet.Config{
			Nodes:        dep.Positions(),
			BaseStation:  fttt.Pt(5, 5),
			Model:        cfg.Model,
			SensingRange: cfg.Range,
			CommRange:    50,
			HopLoss:      0.02,
			HopDelay:     0.002,
			ReportBits:   256,
			Epsilon:      cfg.Epsilon,
		})
		if err != nil {
			panic(err)
		}
		return net
	}

	mob := mobility.RandomWaypoint(field, 1, 5, 60, randx.New(8))

	// Naive: always-on, raw estimates.
	naiveNet := mkNet()
	naive, err := pipeline.New(pipeline.Config{
		Net: naiveNet, Tracker: tracker, Period: 0.5, K: cfg.SamplingTimes,
	})
	if err != nil {
		panic(err)
	}
	naiveUpdates := naive.Run(mob, 60, randx.New(9))

	// Energy-aware: duty-cycled collection + Kalman smoothing, streamed.
	smartNet := mkNet()
	tracker2, err := core.NewWithDivision(cfg, tracker.Division())
	if err != nil {
		panic(err)
	}
	kf, err := filter.NewKalman(2, 6)
	if err != nil {
		panic(err)
	}
	smart, err := pipeline.New(pipeline.Config{
		Net: smartNet, Tracker: tracker2, Smoother: kf,
		Period: 0.5, K: cfg.SamplingTimes, WakeRadius: 45,
	})
	if err != nil {
		panic(err)
	}
	var smartUpdates []pipeline.Update
	asleep := 0
	for u := range smart.Stream(mob, 60, randx.New(9)) {
		smartUpdates = append(smartUpdates, u)
		asleep += u.Stats.Asleep
	}

	sumEnergy := func(net *wsnnet.Network) float64 {
		var s float64
		for _, e := range net.Energy {
			s += e
		}
		return s
	}
	fmt.Printf("rounds: %d at 2 Hz over 60 s\n\n", len(smartUpdates))
	fmt.Printf("naive (always-on, raw):        mean error %.2f m, energy %.1f mJ\n",
		pipeline.MeanError(naiveUpdates), sumEnergy(naiveNet)*1e3)
	fmt.Printf("energy-aware (duty + Kalman):  mean error %.2f m, energy %.1f mJ (%d node-rounds slept)\n",
		pipeline.MeanError(smartUpdates), sumEnergy(smartNet)*1e3, asleep)
}
