// Intruder is the perimeter-surveillance application the paper's
// introduction motivates: sensors watch a protected zone in the middle of
// the field; an intruder crosses the field, and the tracker raises an
// alarm while the *estimated* position is inside the zone. The example
// reports detection latency and dwell-time accuracy against ground truth.
package main

import (
	"fmt"

	"fttt"
)

func main() {
	field := fttt.NewRect(fttt.Pt(0, 0), fttt.Pt(100, 100))
	zone := fttt.NewRect(fttt.Pt(35, 35), fttt.Pt(65, 65))
	dep := fttt.DeployRandom(field, 24, fttt.NewStream(9))

	cfg := fttt.DefaultConfig(dep)
	cfg.Variant = fttt.Extended // smoother trajectory → cleaner alarms
	cfg.CellSize = 2

	// The intruder cuts diagonally through the zone at 2 m/s.
	path := fttt.Waypoints([]fttt.Point{
		fttt.Pt(5, 10), fttt.Pt(50, 50), fttt.Pt(95, 88),
	}, 2)
	trace, times := fttt.SampleTrace(path, 60, 2)

	tracked, err := fttt.Track(cfg, trace, times, 3)
	if err != nil {
		panic(err)
	}

	var trueEnter, estEnter, trueExit, estExit float64 = -1, -1, -1, -1
	trueDwell, estDwell := 0.0, 0.0
	const dt = 0.5
	for _, tp := range tracked {
		inTrue := zone.Contains(tp.True)
		inEst := zone.Contains(tp.Estimate.Pos)
		if inTrue {
			trueDwell += dt
			if trueEnter < 0 {
				trueEnter = tp.T
			}
			trueExit = tp.T
		}
		if inEst {
			estDwell += dt
			if estEnter < 0 {
				estEnter = tp.T
			}
			estExit = tp.T
		}
	}

	fmt.Printf("perimeter zone: x∈[35,65] y∈[35,65], %d sensors, extended FTTT\n", dep.N())
	fmt.Printf("tracking error: mean %.2f m over %d localizations\n",
		fttt.MeanError(tracked), len(tracked))
	fmt.Printf("ground truth: intruder in zone t=%.1fs..%.1fs (dwell %.1fs)\n",
		trueEnter, trueExit, trueDwell)
	if estEnter < 0 {
		fmt.Println("ALARM MISSED: estimated trace never entered the zone")
		return
	}
	fmt.Printf("alarm:        raised        t=%.1fs..%.1fs (dwell %.1fs)\n",
		estEnter, estExit, estDwell)
	fmt.Printf("detection latency: %+.1f s, dwell error: %+.1f s\n",
		estEnter-trueEnter, estDwell-trueDwell)
}
