// Convoy tracks two distinguishable targets simultaneously with a
// MultiTracker sharing one preprocessed division: a lead vehicle crosses
// the field and an escort follows a parallel path. Targets emit on
// distinct frequencies (the outdoor system's piezo resonator generalised),
// so sensors report per-target RSS and the two tracks never interfere.
package main

import (
	"fmt"

	"fttt"
	"fttt/internal/stats"
)

func main() {
	field := fttt.NewRect(fttt.Pt(0, 0), fttt.Pt(100, 100))
	dep := fttt.DeployRandom(field, 20, fttt.NewStream(5))

	cfg := fttt.DefaultConfig(dep)
	cfg.CellSize = 2
	multi, err := fttt.NewMulti(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("shared division: %d faces, preprocessing done once for both targets\n",
		multi.Division().NumFaces())

	lead := fttt.Waypoints([]fttt.Point{fttt.Pt(5, 40), fttt.Pt(95, 45)}, 3)
	escort := fttt.Waypoints([]fttt.Point{fttt.Pt(5, 25), fttt.Pt(95, 30)}, 3)

	sampler := &fttt.Sampler{
		Model: cfg.Model, Nodes: cfg.Nodes, Range: cfg.Range, Epsilon: cfg.Epsilon,
	}
	rng := fttt.NewStream(6)

	var leadErr, escortErr, separation []float64
	for i := 0; i <= 60; i++ {
		t := float64(i) * 0.5
		posLead, posEscort := lead.At(t), escort.At(t)

		gl := sampler.Sample(posLead, cfg.SamplingTimes, rng.SplitN("lead", i))
		ge := sampler.Sample(posEscort, cfg.SamplingTimes, rng.SplitN("escort", i))

		el, err := multi.LocalizeGroup("lead", gl)
		if err != nil {
			panic(err)
		}
		ee, err := multi.LocalizeGroup("escort", ge)
		if err != nil {
			panic(err)
		}
		leadErr = append(leadErr, el.Pos.Dist(posLead))
		escortErr = append(escortErr, ee.Pos.Dist(posEscort))
		separation = append(separation, el.Pos.Dist(ee.Pos))
	}

	fmt.Printf("targets tracked: %v\n", multi.Targets())
	fmt.Printf("lead:   mean error %.2f m\n", stats.Mean(leadErr))
	fmt.Printf("escort: mean error %.2f m\n", stats.Mean(escortErr))
	fmt.Printf("estimated convoy separation: mean %.1f m (true 15 m)\n",
		stats.Mean(separation))
}
