// Quickstart: deploy 16 sensors on a grid, walk a random-waypoint target
// through the field for 30 s, track it with FTTT, and print the error
// summary plus a small ASCII plot of truth vs estimates.
package main

import (
	"fmt"

	"fttt"
)

func main() {
	field := fttt.NewRect(fttt.Pt(0, 0), fttt.Pt(100, 100))
	dep := fttt.DeployGrid(field, 16)

	cfg := fttt.DefaultConfig(dep)
	cfg.SamplingTimes = 5 // k: samples per grouping (Table 1)
	cfg.Epsilon = 1       // ε: sensing resolution in dBm

	mob := fttt.RandomWaypoint(field, 1, 5, 30, fttt.NewStream(42))
	trace, times := fttt.SampleTrace(mob, 30, 2) // localize at 2 Hz

	tracked, err := fttt.Track(cfg, trace, times, 7)
	if err != nil {
		panic(err)
	}

	fmt.Printf("tracked %d localizations with %d sensors\n", len(tracked), dep.N())
	fmt.Printf("mean error: %.2f m\n", fttt.MeanError(tracked))
	worst := tracked[0]
	for _, tp := range tracked {
		if tp.Error > worst.Error {
			worst = tp
		}
	}
	fmt.Printf("worst point: t=%.1fs true=%v est=%v err=%.2fm\n",
		worst.T, worst.True, worst.Estimate.Pos, worst.Error)

	// ASCII overview: '.' field, 'o' sensor, 'T' true trace, 'E' estimate,
	// 'X' where they share a cell.
	const W, H = 50, 25
	grid := make([][]byte, H)
	for r := range grid {
		grid[r] = make([]byte, W)
		for c := range grid[r] {
			grid[r][c] = '.'
		}
	}
	plot := func(p fttt.Point, ch byte) {
		c := int(p.X / 100 * (W - 1))
		r := int(p.Y / 100 * (H - 1))
		cur := grid[H-1-r][c]
		switch {
		case cur == '.' || cur == 'o':
			grid[H-1-r][c] = ch
		case cur != ch && cur != 'o' && ch != 'o':
			grid[H-1-r][c] = 'X'
		}
	}
	for _, tp := range tracked {
		plot(tp.True, 'T')
	}
	for _, tp := range tracked {
		plot(tp.Estimate.Pos, 'E')
	}
	for _, nd := range dep.Nodes {
		plot(nd.Pos, 'o')
	}
	fmt.Println("\nT=true trace  E=estimate  X=both  o=sensor")
	for _, row := range grid {
		fmt.Println(string(row))
	}
}
