// Serve demonstrates tracking-as-a-service end to end: it stands up the
// fttt serving layer on a loopback listener (exactly what the
// fttt-serve daemon runs), then acts as an HTTP client — creating a
// session, streaming estimates over SSE while a target crosses the
// field via repeated localize calls, reading back the latest estimate,
// and finishing with a graceful drain. Every request here maps 1:1 to
// the curl walkthrough in the README's "Serving" section.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"

	"fttt"
)

func main() {
	// The daemon side: fttt-serve does exactly this behind flags.
	srv := fttt.NewServer(fttt.ServeConfig{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()
	fmt.Printf("serving on %s\n", ts.URL)

	// POST /v1/sessions — create a session from a wire config. The seed
	// pins the session's entire noise sequence: rerunning this program
	// reproduces every estimate byte for byte.
	sc := fttt.SessionConfig{Seed: 42, GridNodes: 16, CellSize: 2}
	body, _ := json.Marshal(sc)
	resp, err := client.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		panic(err)
	}
	var sess struct {
		ID    string `json:"id"`
		Faces int    `json:"faces"`
	}
	must(json.NewDecoder(resp.Body).Decode(&sess))
	resp.Body.Close()
	fmt.Printf("session %s created: %d faces preprocessed\n", sess.ID, sess.Faces)

	// GET /v1/sessions/{id}/stream — subscribe to the SSE estimate
	// stream before driving the target, so every update is observed.
	streamCtx, stopStream := context.WithCancel(context.Background())
	defer stopStream()
	req, _ := http.NewRequestWithContext(streamCtx, http.MethodGet,
		ts.URL+"/v1/sessions/"+sess.ID+"/stream", nil)
	streamResp, err := client.Do(req)
	if err != nil {
		panic(err)
	}
	defer streamResp.Body.Close()
	events := make(chan string, 32)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(streamResp.Body)
		for sc.Scan() {
			if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
				events <- data
			}
		}
	}()

	// POST /v1/sessions/{id}/localize — drive the target across the
	// field. Concurrent clients would be coalesced into micro-batches;
	// a single client executes immediately with no batching latency.
	for step := 0; step <= 8; step++ {
		x := 10 + 10*float64(step)
		lw, _ := json.Marshal(map[string]any{"target": "rover", "x": x, "y": 50})
		resp, err := client.Post(ts.URL+"/v1/sessions/"+sess.ID+"/localize",
			"application/json", bytes.NewReader(lw))
		if err != nil {
			panic(err)
		}
		var est fttt.EstimateWire
		must(json.NewDecoder(resp.Body).Decode(&est))
		resp.Body.Close()
		fmt.Printf("  req %d: true (%5.1f, 50.0) -> est (%5.1f, %5.1f) confidence %.2f\n",
			est.Seq, x, est.X, est.Y, est.Confidence)
	}

	// The SSE stream saw the same estimates the localize calls returned.
	fmt.Println("stream observed:")
	for i := 0; i < 3; i++ {
		var est fttt.EstimateWire
		must(json.Unmarshal([]byte(<-events), &est))
		fmt.Printf("  event seq %d: (%5.1f, %5.1f)\n", est.Seq, est.X, est.Y)
	}

	// GET /v1/sessions/{id}/estimates/{target} — the latest estimate is
	// queryable without issuing new work.
	resp, err = client.Get(ts.URL + "/v1/sessions/" + sess.ID + "/estimates/rover")
	if err != nil {
		panic(err)
	}
	var latest fttt.EstimateWire
	must(json.NewDecoder(resp.Body).Decode(&latest))
	resp.Body.Close()
	fmt.Printf("latest estimate: seq %d at (%5.1f, %5.1f)\n", latest.Seq, latest.X, latest.Y)

	// Graceful drain: in-flight work finishes, new work gets 503, every
	// SSE stream is closed — what fttt-serve does on SIGTERM.
	must(srv.Drain(context.Background()))
	fmt.Println("drained: sessions closed, streams ended")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
