// Faulttolerance demonstrates Sec. 4.4(3): sensors die mid-track (battery
// or damage) and their reports vanish, yet the sampling vector is filled
// by eq. 6 (silent nodes assumed weaker; Star between two silent nodes)
// and tracking degrades gracefully instead of breaking.
//
// The scenario kills 1/3 of the network at t=20s and another 1/3 at
// t=40s, printing the error statistics per phase.
package main

import (
	"fmt"

	"fttt"
	"fttt/internal/core"
	"fttt/internal/mobility"
	"fttt/internal/randx"
	"fttt/internal/sampling"
	"fttt/internal/stats"
)

func main() {
	field := fttt.NewRect(fttt.Pt(0, 0), fttt.Pt(100, 100))
	dep := fttt.DeployGrid(field, 18)
	cfg := fttt.DefaultConfig(dep)
	cfg.CellSize = 2
	tr, err := core.New(cfg)
	if err != nil {
		panic(err)
	}

	root := randx.New(11)
	mob := mobility.RandomWaypoint(field, 1, 5, 60, root.Split("mob"))
	tps := mobility.Sample(mob, 60, 2)

	// Direct sampler control so the example can kill nodes explicitly.
	sampler := &sampling.Sampler{
		Model: cfg.Model, Nodes: dep.Positions(), Range: cfg.Range, Epsilon: cfg.Epsilon,
	}
	dead := make(map[int]bool)
	kill := func(ids ...int) {
		for _, id := range ids {
			dead[id] = true
		}
	}

	phase := func(lo, hi float64) []float64 {
		var errs []float64
		for i, tp := range tps {
			if tp.T < lo || tp.T >= hi {
				continue
			}
			g := sampler.Sample(tp.Pos, cfg.SamplingTimes, root.SplitN("loc", i))
			for id := range dead {
				g.Reported[id] = false
			}
			est := tr.LocalizeGroup(g)
			errs = append(errs, est.Pos.Dist(tp.Pos))
		}
		return errs
	}

	fmt.Printf("18 sensors, FTTT with eq. 6 fault filling\n\n")

	p1 := phase(0, 20)
	s1 := stats.Summarize(p1)
	fmt.Printf("phase 1 (all 18 alive):    mean=%.2fm stddev=%.2fm\n", s1.Mean, s1.StdDev)

	kill(0, 3, 6, 9, 12, 15) // a third of the network dies
	p2 := phase(20, 40)
	s2 := stats.Summarize(p2)
	fmt.Printf("phase 2 (12 alive):        mean=%.2fm stddev=%.2fm\n", s2.Mean, s2.StdDev)

	kill(1, 4, 7, 10, 13, 16) // another third dies
	p3 := phase(40, 60)
	s3 := stats.Summarize(p3)
	fmt.Printf("phase 3 (6 alive):         mean=%.2fm stddev=%.2fm\n", s3.Mean, s3.StdDev)

	fmt.Printf("\ntracking never breaks: every localization still returns an estimate;\n")
	fmt.Printf("error grows as coverage thins (%.1f → %.1f → %.1f m), the graceful\n",
		s1.Mean, s2.Mean, s3.Mean)
	fmt.Println("degradation the eq. 6 filling buys (Sec. 4.4(3)).")
}
