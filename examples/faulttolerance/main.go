// Faulttolerance demonstrates Sec. 4.4(3) and DESIGN.md §9: sensors die
// mid-track (battery or damage) and their reports vanish, yet the
// sampling vector is filled by eq. 6 (silent nodes assumed weaker; Star
// between two silent nodes) and tracking degrades gracefully instead of
// breaking.
//
// The fault scenario is a declarative internal/faults script — a third
// of the network crashes at t=20s and another third at t=40s — injected
// into the sampler through the nil-is-off fault hook. The tracker runs
// with the degradation policy armed: rounds whose sampling vector is
// star-dominated are retried once and, if still degraded, fall back to
// last-estimate extrapolation instead of trusting a hollow match.
package main

import (
	"fmt"

	"fttt"
	"fttt/internal/core"
	"fttt/internal/faults"
	"fttt/internal/mobility"
	"fttt/internal/randx"
	"fttt/internal/sampling"
	"fttt/internal/stats"
)

func main() {
	field := fttt.NewRect(fttt.Pt(0, 0), fttt.Pt(100, 100))
	dep := fttt.DeployGrid(field, 18)
	cfg := fttt.DefaultConfig(dep)
	cfg.CellSize = 2
	cfg.StarFractionLimit = 0.6 // arm the DESIGN.md §9 degradation policy
	tr, err := core.New(cfg)
	if err != nil {
		panic(err)
	}

	// The whole scenario in six lines of script: which nodes die, when.
	script, err := faults.Parse(`
		crash at=20 nodes=0,3,6,9,12,15   # a third of the network dies
		crash at=40 nodes=1,4,7,10,13,16  # another third dies
	`)
	if err != nil {
		panic(err)
	}
	sched := faults.New(*script, 18, 11)

	root := randx.New(11)
	mob := mobility.RandomWaypoint(field, 1, 5, 60, root.Split("mob"))
	tps := mobility.Sample(mob, 60, 2)

	// Direct sampler control with the fault scheduler attached: crashed
	// nodes stop reporting the moment the fault clock passes their event.
	sampler := &sampling.Sampler{
		Model: cfg.Model, Nodes: dep.Positions(), Range: cfg.Range, Epsilon: cfg.Epsilon,
		Faults: sched,
	}

	degraded, retried, extrapolated := 0, 0, 0
	phase := func(lo, hi float64) []float64 {
		var errs []float64
		for i, tp := range tps {
			if tp.T < lo || tp.T >= hi {
				continue
			}
			sched.Seek(tp.T)
			g := sampler.Sample(tp.Pos, cfg.SamplingTimes, root.SplitN("loc", i))
			est := tr.LocalizeGroupRetry(g, func() *sampling.Group {
				// The bounded retry: one re-collection from an
				// independent substream after a short backoff.
				sched.Seek(tp.T + 0.1)
				return sampler.Sample(tp.Pos, cfg.SamplingTimes, root.SplitN("loc", i).Split("retry"))
			})
			if est.Degraded {
				degraded++
			}
			if est.Retried {
				retried++
			}
			if est.Extrapolated {
				extrapolated++
			}
			errs = append(errs, est.Pos.Dist(tp.Pos))
		}
		return errs
	}

	fmt.Printf("18 sensors, FTTT with eq. 6 fault filling + §9 degradation policy\n\n")

	p1 := phase(0, 20)
	s1 := stats.Summarize(p1)
	fmt.Printf("phase 1 (all 18 alive):    mean=%.2fm stddev=%.2fm\n", s1.Mean, s1.StdDev)

	p2 := phase(20, 40)
	s2 := stats.Summarize(p2)
	fmt.Printf("phase 2 (12 alive):        mean=%.2fm stddev=%.2fm\n", s2.Mean, s2.StdDev)

	p3 := phase(40, 60)
	s3 := stats.Summarize(p3)
	fmt.Printf("phase 3 (6 alive):         mean=%.2fm stddev=%.2fm\n", s3.Mean, s3.StdDev)

	fmt.Printf("\ndegradation policy: %d rounds flagged, %d retried, %d extrapolated\n",
		degraded, retried, extrapolated)
	fmt.Printf("tracking never breaks: every localization still returns an estimate;\n")
	fmt.Printf("error grows as coverage thins (%.1f → %.1f → %.1f m), the graceful\n",
		s1.Mean, s2.Mean, s3.Mean)
	fmt.Println("degradation the eq. 6 filling buys (Sec. 4.4(3)).")
}
