GO ?= go
FUZZTIME ?= 5s

.PHONY: build test race raceserve vet allocgate fuzz soak check bench tools clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# raceserve is the serving-layer race gate: the batcher/admission
# concurrency machinery plus the end-to-end load test, all under the
# race detector (the CI job of the same name).
raceserve:
	$(GO) test -race -count 1 ./internal/serve/... ./internal/core/...

vet:
	$(GO) vet ./...

# allocgate pins the hot-path allocation budgets (alloc_test.go). It must
# run without -race: the race runtime allocates on the code's behalf, so
# the gates skip themselves under it.
allocgate:
	$(GO) test -run 'TestHeuristicMatchZeroAllocs|TestLocalizeGroupAllocBudget|TestServeLocalizeAllocBudget' -count 1 -v .

# fuzz runs every native fuzz target for FUZZTIME each (one -fuzz
# invocation per target: go test allows a single fuzz target per run).
fuzz:
	$(GO) test -fuzz FuzzVectorDiff -fuzztime $(FUZZTIME) ./internal/vector/
	$(GO) test -fuzz FuzzSimilarity -fuzztime $(FUZZTIME) ./internal/vector/
	$(GO) test -fuzz FuzzGroupVector -fuzztime $(FUZZTIME) ./internal/sampling/
	$(GO) test -fuzz FuzzHeuristicMatch -fuzztime $(FUZZTIME) ./internal/match/

# soak is the long-running serving load test (minutes, race-enabled);
# not part of check.
soak:
	$(GO) test -race -tags soak -count 1 -run TestLoadSoak -v ./internal/serve/loadtest

# check is the full local gate: what CI runs.
check: vet build race raceserve allocgate fuzz

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

tools:
	$(GO) build -o bin/ ./cmd/...

clean:
	rm -rf bin
