GO ?= go

.PHONY: build test race vet allocgate check bench tools clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# allocgate pins the hot-path allocation budgets (alloc_test.go). It must
# run without -race: the race runtime allocates on the code's behalf, so
# the gates skip themselves under it.
allocgate:
	$(GO) test -run 'TestHeuristicMatchZeroAllocs|TestLocalizeGroupAllocBudget' -count 1 -v .

# check is the full local gate: what CI runs.
check: vet build race allocgate

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

tools:
	$(GO) build -o bin/ ./cmd/...

clean:
	rm -rf bin
