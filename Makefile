GO ?= go

.PHONY: build test race vet check bench tools clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# check is the full local gate: what CI runs.
check: vet build race

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

tools:
	$(GO) build -o bin/ ./cmd/...

clean:
	rm -rf bin
