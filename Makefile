GO ?= go
FUZZTIME ?= 5s
# perf harness knobs (DESIGN.md §11): where `make perf` writes its
# report and which committed baseline `make perfcheck` judges against.
PERF_OUT ?= BENCH_PR5.json
PERF_BASELINE ?= results/perf/baseline.json

.PHONY: build test race raceserve vet allocgate fuzz soak check bench tools clean \
	perf perfcheck profiles docscheck trace-demo

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# raceserve is the serving-layer race gate: the batcher/admission
# concurrency machinery, the router/migration machinery, and the
# end-to-end load tests (single-process and cluster), all under the
# race detector (the CI job of the same name).
raceserve:
	$(GO) test -race -count 1 ./internal/serve/... ./internal/core/... ./internal/cluster/...

vet:
	$(GO) vet ./...

# allocgate pins the hot-path allocation budgets (alloc_test.go). It must
# run without -race: the race runtime allocates on the code's behalf, so
# the gates skip themselves under it.
allocgate:
	$(GO) test -run 'TestHeuristicMatchZeroAllocs|TestMatchBatchZeroAllocs|TestLocalizeGroupAllocBudget|TestServeLocalizeAllocBudget|TestTraceNilPathZeroAllocs' -count 1 -v .

# fuzz runs every native fuzz target for FUZZTIME each (one -fuzz
# invocation per target: go test allows a single fuzz target per run).
fuzz:
	$(GO) test -fuzz FuzzVectorDiff -fuzztime $(FUZZTIME) ./internal/vector/
	$(GO) test -fuzz FuzzSimilarity -fuzztime $(FUZZTIME) ./internal/vector/
	$(GO) test -fuzz FuzzGroupVector -fuzztime $(FUZZTIME) ./internal/sampling/
	$(GO) test -fuzz FuzzHeuristicMatch -fuzztime $(FUZZTIME) ./internal/match/
	$(GO) test -fuzz FuzzMatchBatchEquivalence -fuzztime $(FUZZTIME) ./internal/match/
	$(GO) test -fuzz FuzzByzQuorumVote -fuzztime $(FUZZTIME) ./internal/byz/

# soak is the long-running serving load test (minutes, race-enabled);
# not part of check.
soak:
	$(GO) test -race -tags soak -count 1 -run TestLoadSoak -v ./internal/serve/loadtest

# docscheck is the documentation gate: vet, the package-doc-comment
# audit, and the runnable facade examples.
docscheck:
	$(GO) vet ./...
	$(GO) test -run 'TestPackageDocComments|TestMissingPackageDocsDetects|Example' -count 1 ./...

# check is the full local gate: what CI runs.
check: vet build race raceserve allocgate fuzz docscheck

bench:
	$(GO) test -bench . -benchmem -run '^$$' .

# perf runs the full-depth perfbench suite and writes $(PERF_OUT); use
# it to seed the per-PR trajectory (BENCH_PR<N>.json).
perf:
	$(GO) run ./cmd/fttt-perf run -o $(PERF_OUT)

# perfcheck is the regression gate: run the suite at smoke depth and
# diff against the committed baseline with noise-tolerant thresholds
# (exit 2 on regression). Regenerate the baseline with
# `go run ./cmd/fttt-perf baseline` after an intended perf change.
perfcheck:
	$(GO) run ./cmd/fttt-perf compare -baseline $(PERF_BASELINE)

# profiles captures per-scenario cpu/heap pprof profiles into
# results/perf/profiles/ (quick repetitions; the report goes to stdout
# and is discarded).
profiles:
	$(GO) run ./cmd/fttt-perf run -quick -profiles results/perf/profiles > /dev/null

# trace-demo produces a Perfetto-loadable flight recording from a
# seeded faulted run: load results/trace/demo.trace.json into
# https://ui.perfetto.dev (or chrome://tracing) to walk the span trees.
trace-demo:
	mkdir -p results/trace
	$(GO) run ./cmd/fttt-sim -seed 7 -duration 20 -starfrac 0.6 \
		-faults 'crash at=3 frac=0.3 recover=8; drift sigma=0.05; skew max=0.01' \
		-trace results/trace/demo.jsonl > /dev/null
	$(GO) run ./cmd/fttt-trace chrome results/trace/demo.jsonl -o results/trace/demo.trace.json
	@echo "trace-demo: results/trace/demo.trace.json (load in https://ui.perfetto.dev)"

tools:
	$(GO) build -o bin/ ./cmd/...

clean:
	rm -rf bin
