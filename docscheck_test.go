// Documentation gate (`make docscheck`): every non-test package in the
// module — the facade, every internal/* and cmd/* package, and the
// examples — must carry a package-level doc comment. The godoc pass of
// DESIGN.md §3 is enforced, not aspirational.
package fttt_test

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// missingPackageDocs walks root and returns "dir (package name)" for
// every non-test package whose files all lack a package doc comment.
func missingPackageDocs(root string) ([]string, error) {
	var missing []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if name != "." && (strings.HasPrefix(name, ".") || name == "testdata" || name == "bin" || name == "results") {
			return fs.SkipDir
		}
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return err
		}
		for pkgName, pkg := range pkgs {
			if strings.HasSuffix(pkgName, "_test") {
				continue
			}
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				rel, rerr := filepath.Rel(root, path)
				if rerr != nil {
					rel = path
				}
				missing = append(missing, rel+" (package "+pkgName+")")
			}
		}
		return nil
	})
	return missing, err
}

func TestPackageDocComments(t *testing.T) {
	missing, err := missingPackageDocs(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range missing {
		t.Errorf("package without a doc comment: %s", m)
	}
}

// TestMissingPackageDocsDetects proves the checker actually fails on an
// undocumented package (so a green TestPackageDocComments means
// something).
func TestMissingPackageDocsDetects(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "undoc")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "u.go"), []byte("package undoc\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "doc.go"), []byte("// Package ok is documented.\npackage ok\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	missing, err := missingPackageDocs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 1 || !strings.Contains(missing[0], "undoc") {
		t.Fatalf("missing = %v, want exactly the undoc package", missing)
	}
}
