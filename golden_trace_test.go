package fttt_test

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"fttt"
	"fttt/internal/core"
	"fttt/internal/faults"
	"fttt/internal/fsx"
)

// -update-golden regenerates the fixtures under results/golden/ from
// the current code. Run it only when a behavioural change is intended;
// the diff of the fixture files then documents exactly what moved.
var updateGolden = flag.Bool("update-golden", false, "rewrite the results/golden trace fixtures")

const goldenDir = "results/golden"

// goldenEps bounds the per-coordinate replay deviation. The scenarios
// are fully deterministic, so the only slack needed is the fixture's
// own decimal rounding (%.6f).
const goldenEps = 1e-5

// goldenTrace runs one of the pinned end-to-end scenarios. The faulted
// variant layers the full fault repertoire — mid-run partial crash with
// recovery, burst channel, calibration drift, clock skew — on the same
// deployment and trace, with the degradation policy armed.
func goldenTrace(t *testing.T, faulted bool) []fttt.TrackedPoint {
	t.Helper()
	field := fttt.NewRect(fttt.Pt(0, 0), fttt.Pt(100, 100))
	dep := fttt.DeployGrid(field, 16)
	cfg := fttt.DefaultConfig(dep)
	cfg.CellSize = 2
	if faulted {
		script, err := faults.Parse(`
			crash at=6 frac=0.25 recover=14
			crash at=8 frac=0.9 recover=10   # brief near-blackout: trips the degradation policy
			burst pgb=0.05 pbg=0.5 loss=0.9
			drift sigma=0.05
			skew max=0.01 slew=10
		`)
		if err != nil {
			t.Fatal(err)
		}
		cfg.FaultScript = script
		cfg.FaultSeed = 99
		cfg.StarFractionLimit = 0.6
		cfg.RetryBackoff = 0.1
	}
	mob := fttt.Waypoints([]fttt.Point{fttt.Pt(20, 20), fttt.Pt(80, 60)}, 3)
	trace, times := fttt.SampleTrace(mob, 20, 2)
	tracked, err := fttt.Track(cfg, trace, times, 12345)
	if err != nil {
		t.Fatal(err)
	}
	return tracked
}

func goldenCSV(pts []fttt.TrackedPoint) string {
	var b strings.Builder
	b.WriteString("t,true_x,true_y,est_x,est_y,err,degraded,retried,extrapolated\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%d,%d,%d\n",
			p.T, p.True.X, p.True.Y, p.Estimate.Pos.X, p.Estimate.Pos.Y, p.Error,
			b2i(p.Estimate.Degraded), b2i(p.Estimate.Retried), b2i(p.Estimate.Extrapolated))
	}
	return b.String()
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// replayGolden re-runs the scenario and compares every field of every
// tracked point against the committed fixture within goldenEps.
func replayGolden(t *testing.T, name string, faulted bool) {
	got := goldenCSV(goldenTrace(t, faulted))

	if *updateGolden {
		path := filepath.Join(goldenDir, name)
		if err := fsx.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	compareGoldenCSV(t, name, got)
}

// compareGoldenCSV diffs a rendered replay against the committed
// fixture, field by field within goldenEps.
func compareGoldenCSV(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join(goldenDir, name)
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture %s (generate with: go test -run GoldenTrace -update-golden): %v", path, err)
	}
	wantLines := strings.Split(strings.TrimSpace(string(want)), "\n")
	gotLines := strings.Split(strings.TrimSpace(got), "\n")
	if len(gotLines) != len(wantLines) {
		t.Fatalf("replay has %d lines, fixture has %d", len(gotLines), len(wantLines))
	}
	for li := 1; li < len(wantLines); li++ { // skip header
		wf := strings.Split(wantLines[li], ",")
		gf := strings.Split(gotLines[li], ",")
		if len(wf) != len(gf) {
			t.Fatalf("line %d: %d fields vs %d in fixture", li, len(gf), len(wf))
		}
		for ci := range wf {
			w, err1 := strconv.ParseFloat(wf[ci], 64)
			g, err2 := strconv.ParseFloat(gf[ci], 64)
			if err1 != nil || err2 != nil {
				t.Fatalf("line %d col %d: unparseable %q / %q", li, ci, wf[ci], gf[ci])
			}
			if math.Abs(w-g) > goldenEps {
				t.Errorf("line %d col %d: replay %v, fixture %v (Δ=%g > %g)\n"+
					"(a deliberate behavioural change? regenerate with -update-golden)",
					li, ci, g, w, math.Abs(w-g), goldenEps)
				return
			}
		}
	}
}

// TestGoldenTraceBaseline replays the fault-free pinned scenario
// against results/golden/track_baseline.csv: any change to RNG
// splitting, sampling, division or matching shows up as a point-wise
// diff, not just a shifted mean.
func TestGoldenTraceBaseline(t *testing.T) {
	replayGolden(t, "track_baseline.csv", false)
}

// TestGoldenTraceFaulted replays the fault-injected pinned scenario
// (crash+recover, burst channel, drift, skew, degradation policy armed)
// against results/golden/track_faulted.csv — the fault scheduler's draw
// sequences are part of the pinned behaviour.
func TestGoldenTraceFaulted(t *testing.T) {
	replayGolden(t, "track_faulted.csv", true)
}

// goldenTraceBatched replays the same pinned scenario through the
// wave-batched MultiTracker path: every trace point becomes a
// LocalizeRequest for one target, so each point's first match runs
// through match.Batch's SoA kernel instead of the serial Heuristic.
// The fault-free variant submits the whole trace as a single
// LocalizeBatch call (per-target FIFO turns it into 41 single-lane
// waves in order); the faulted variant must advance the fault clock
// between points exactly as Track's Seek does, so each point is its own
// batch with the recorder armed — proving instrumentation does not
// perturb the wave path either.
func goldenTraceBatched(t *testing.T, faulted bool) []fttt.TrackedPoint {
	t.Helper()
	field := fttt.NewRect(fttt.Pt(0, 0), fttt.Pt(100, 100))
	dep := fttt.DeployGrid(field, 16)
	cfg := fttt.DefaultConfig(dep)
	cfg.CellSize = 2
	if faulted {
		script, err := faults.Parse(`
			crash at=6 frac=0.25 recover=14
			crash at=8 frac=0.9 recover=10
			burst pgb=0.05 pbg=0.5 loss=0.9
			drift sigma=0.05
			skew max=0.01 slew=10
		`)
		if err != nil {
			t.Fatal(err)
		}
		cfg.FaultScript = script
		cfg.FaultSeed = 99
		cfg.StarFractionLimit = 0.6
		cfg.RetryBackoff = 0.1
		cfg.Tracer = fttt.NewTraceRecorder(0)
	}
	m, err := fttt.NewMulti(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Division().SoA() == nil {
		t.Fatal("golden division carries no SoA store; the wave path would not engage")
	}
	mob := fttt.Waypoints([]fttt.Point{fttt.Pt(20, 20), fttt.Pt(80, 60)}, 3)
	trace, times := fttt.SampleTrace(mob, 20, 2)
	rng := fttt.NewStream(12345)
	const target = "golden"
	out := make([]fttt.TrackedPoint, len(trace))
	record := func(i int, est fttt.Estimate) {
		out[i] = fttt.TrackedPoint{
			T:        times[i],
			True:     trace[i],
			Estimate: est,
			Error:    est.Pos.Dist(trace[i]),
		}
	}
	if !faulted {
		reqs := make([]core.LocalizeRequest, len(trace))
		for i, pos := range trace {
			reqs[i] = core.LocalizeRequest{ID: target, Pos: pos, Rng: rng.SplitN("loc", i)}
		}
		ests, err := m.LocalizeBatch(reqs, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ests {
			record(i, ests[i])
		}
		return out
	}
	for i, pos := range trace {
		sched, err := m.FaultScheduler(target)
		if err != nil {
			t.Fatal(err)
		}
		if sched != nil {
			sched.Seek(times[i])
		}
		ests, err := m.LocalizeBatch(
			[]core.LocalizeRequest{{ID: target, Pos: pos, Rng: rng.SplitN("loc", i)}}, 0)
		if err != nil {
			t.Fatal(err)
		}
		record(i, ests[0])
	}
	return out
}

// replayGoldenBatched checks the batched replay against the
// serial-generated fixture, byte for byte: the wave path's estimates,
// flags and formatting must be indistinguishable from Track's.
func replayGoldenBatched(t *testing.T, name string, faulted bool) {
	if *updateGolden {
		t.Skip("fixtures are generated by the serial replay")
	}
	got := goldenCSV(goldenTraceBatched(t, faulted))
	want, err := os.ReadFile(filepath.Join(goldenDir, name))
	if err != nil {
		t.Fatalf("missing fixture (generate with: go test -run GoldenTrace -update-golden): %v", err)
	}
	if got == string(want) {
		return
	}
	// Not byte-identical: run the numeric comparer for a readable diff,
	// then fail regardless — equality within goldenEps is not enough for
	// the batched path, whose contract is bitwise equivalence.
	compareGoldenCSV(t, name, got)
	t.Errorf("batched replay of %s differs from the serial fixture at the byte level", name)
}

// TestGoldenTraceBatchedBaseline replays the fault-free pinned scenario
// through MultiTracker.LocalizeBatch (the SoA wave path) and demands
// the exact bytes of results/golden/track_baseline.csv — the
// end-to-end form of the batch matcher's differential contract.
func TestGoldenTraceBatchedBaseline(t *testing.T) {
	replayGoldenBatched(t, "track_baseline.csv", false)
}

// TestGoldenTraceBatchedFaulted replays the fault-injected scenario
// through per-point wave batches with the flight recorder armed and
// demands the exact bytes of results/golden/track_faulted.csv:
// degradation retries, extrapolation and the fault scheduler's draw
// sequences must all survive the batched execution unchanged.
func TestGoldenTraceBatchedFaulted(t *testing.T) {
	replayGoldenBatched(t, "track_faulted.csv", true)
}
