// Package fttt is the public facade of the FTTT library: a
// fault-tolerant target-tracking strategy for wireless sensor networks
// based on unreliable (uncertain) pairwise sensing, reproducing Xie et
// al., "Rethinking of the Uncertainty: A Fault-Tolerant Target-Tracking
// Strategy Based on Unreliable Sensing in Wireless Sensor Networks"
// (KSII TIIS 2012; workshop version at IEEE IPDPS/HPDIC 2012).
//
// # Overview
//
// RSS comparisons between a sensor pair flip when the target is near the
// pair's uncertain area — the region bounded by two Apollonius circles
// where noise makes the pair's order unreliable. FTTT turns that flip
// into information: the monitor field is divided into faces, each with a
// ternary signature vector over all node pairs (+1 / 0 / −1 for "nearer
// the lower-ID node" / "uncertain" / "nearer the higher-ID node"); each
// localization performs a grouping sampling of k rapid RSS samples,
// derives the matching ternary sampling vector (0 when the observed
// order flipped), and locates the target in the face with the most
// similar signature. Missing reports degrade the vector gracefully
// (fault tolerance), and the Extended variant replaces ternary values
// with quantitative flip ratios for a smoother trajectory.
//
// # Quick start
//
//	dep := fttt.DeployGrid(fttt.NewRect(fttt.Pt(0, 0), fttt.Pt(100, 100)), 16)
//	cfg := fttt.DefaultConfig(dep)
//	tr, err := fttt.New(cfg)
//	if err != nil { ... }
//	est := tr.Localize(fttt.Pt(42, 58), fttt.NewStream(1))
//	fmt.Println(est.Pos)
//
// See examples/ for runnable scenarios, internal/experiments for the
// paper's evaluation harness, and DESIGN.md for the system inventory.
package fttt

import (
	"fmt"
	"io"

	"fttt/internal/byz"
	"fttt/internal/cluster"
	"fttt/internal/core"
	"fttt/internal/deploy"
	"fttt/internal/geom"
	"fttt/internal/mobility"
	"fttt/internal/obs"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/sampling"
	"fttt/internal/serve"
)

// Re-exported core types: the tracker and its configuration.
type (
	// Config parameterises a Tracker; see Table 1 of the paper for the
	// evaluation settings (DefaultConfig applies them).
	Config = core.Config
	// Tracker is a ready-to-run FTTT instance.
	Tracker = core.Tracker
	// Variant selects Basic (ternary) or Extended (quantitative)
	// sampling vectors.
	Variant = core.Variant
	// Estimate is the outcome of one localization.
	Estimate = core.Estimate
	// TrackedPoint pairs a true position with its estimate and error.
	TrackedPoint = core.TrackedPoint
	// DefenseConfig parameterises the Byzantine-sensing defense layer;
	// set Config.Defense (with Enabled true) to arm it (DESIGN.md §15).
	DefenseConfig = byz.Config
)

// Re-exported tracker variants.
const (
	Basic    = core.Basic
	Extended = core.Extended
)

// Re-exported geometry types.
type (
	// Point is a location in the monitor field (metres).
	Point = geom.Point
	// Rect is an axis-aligned rectangle, usually the monitor field.
	Rect = geom.Rect
)

// Re-exported signal model and RNG types.
type (
	// Model is the log-distance path-loss signal model of eq. 1.
	Model = rf.Model
	// Stream is a deterministic random stream; all APIs taking one are
	// reproducible given the same seed.
	Stream = randx.Stream
	// Deployment is an ordered sensor layout.
	Deployment = deploy.Deployment
	// Mobility yields the target position over time.
	Mobility = mobility.Model
)

// Multi-target and sampling types.
type (
	// MultiTracker tracks several distinguishable targets over one
	// shared field division. It is safe for concurrent use; distinct
	// targets localize in parallel.
	MultiTracker = core.MultiTracker
	// TargetPosition names one target's true position for a batch
	// MultiTracker.LocalizeAll round.
	TargetPosition = core.TargetPosition
	// TargetGroup names one target's grouping sampling for a batch
	// MultiTracker.LocalizeGroups round.
	TargetGroup = core.TargetGroup
	// Sampler draws grouping samplings from the signal model — use it
	// when feeding LocalizeGroup with externally collected samples.
	Sampler = sampling.Sampler
	// Group is one grouping sampling (the k×n RSS matrix of Def. 3).
	Group = sampling.Group
)

// Telemetry types (DESIGN.md §"Telemetry"). Attach a Registry via
// Config.Obs and/or a Tracer via Config.Tracer to observe the tracker;
// nil (the default) disables all bookkeeping at near-zero cost.
type (
	// Registry is a named collection of counters, gauges and histograms;
	// its Snapshot().WriteTo renders the Prometheus text format.
	Registry = obs.Registry
	// Tracer receives span/event callbacks from instrumented components.
	Tracer = obs.Tracer
	// TelemetryServer exposes a Registry over HTTP (/metrics, expvar,
	// pprof).
	TelemetryServer = obs.Server
)

// Tracing types (DESIGN.md §12): the structured flight recorder behind
// Config.Tracer, the -trace flags of fttt-sim/fttt-track, and the
// serving layer's /debug/trace endpoint.
type (
	// TraceRecorder is the bounded lock-free ring of trace records; it
	// implements Tracer, so install it via Config.Tracer. A nil
	// *TraceRecorder is "tracing off" at pointer-check cost.
	TraceRecorder = obs.Recorder
	// TraceRecord is one completed span, event or link of a recording.
	TraceRecord = obs.Record
	// SpanRef identifies a span for parenting and linking.
	SpanRef = obs.SpanRef
)

// NewTraceRecorder builds a flight recorder keeping the last capacity
// records (<= 0 selects the default of obs.DefaultRecorderCap).
func NewTraceRecorder(capacity int) *TraceRecorder { return obs.NewRecorder(capacity) }

// NewMultiTracer fans tracer callbacks out to every non-nil tracer —
// use it to combine a TraceRecorder with a custom Tracer.
func NewMultiTracer(tracers ...Tracer) Tracer { return obs.NewMultiTracer(tracers...) }

// WriteTraceJSONL writes a recording one JSON record per line — the
// format fttt-trace and ReadTraceJSONL consume.
func WriteTraceJSONL(w io.Writer, recs []TraceRecord) error { return obs.WriteJSONL(w, recs) }

// ReadTraceJSONL loads a JSONL recording.
func ReadTraceJSONL(r io.Reader) ([]TraceRecord, error) { return obs.ReadJSONL(r) }

// WriteChromeTrace converts a recording to the Chrome trace-event JSON
// format, loadable in https://ui.perfetto.dev or chrome://tracing.
func WriteChromeTrace(w io.Writer, recs []TraceRecord) error { return obs.WriteChromeTrace(w, recs) }

// NewRegistry returns an empty telemetry registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// ServeTelemetry starts an HTTP server on addr exposing reg at /metrics
// plus expvar and pprof debug endpoints — what the CLI tools put behind
// their -telemetry-addr flag.
func ServeTelemetry(addr string, reg *Registry) (*TelemetryServer, error) {
	return obs.Serve(addr, reg)
}

// Serving layer (tracking-as-a-service; DESIGN.md §10): a long-running
// HTTP/JSON API over MultiTracker with micro-batched localization,
// bounded admission with load shedding, request deadlines, SSE estimate
// streams and graceful drain. The fttt-serve command is the daemon.
type (
	// Server is the tracking-as-a-service handler + session table; it
	// implements http.Handler.
	Server = serve.Server
	// ServeConfig parameterises a Server; its zero value is usable.
	ServeConfig = serve.Config
	// ServeSession is one live tracking session behind its admission
	// queue and micro-batcher.
	ServeSession = serve.Session
	// SessionConfig is the wire-level session configuration (the JSON
	// body of POST /v1/sessions).
	SessionConfig = serve.SessionConfig
	// PointWire and RectWire are SessionConfig's field/node coordinates
	// on the wire.
	PointWire = serve.PointWire
	RectWire  = serve.RectWire
	// EstimateWire is one localization outcome on the wire.
	EstimateWire = serve.EstimateWire
)

// NewServer builds a tracking-as-a-service server.
func NewServer(cfg ServeConfig) *Server { return serve.New(cfg) }

// Cluster layer: shard the serving tier horizontally behind a
// consistent-hash session router (internal/cluster, DESIGN.md §16).
// The fttt-router command is the daemon form.
type (
	// Router is the consistent-hash session router: an http.Handler
	// proxying the /v1/sessions API across fttt-serve backends and
	// migrating sessions off draining members.
	Router = cluster.Router
	// RouterConfig parameterises a Router.
	RouterConfig = cluster.Config
	// ClusterBackend names one fttt-serve member of a Router's set.
	ClusterBackend = cluster.Backend
)

// NewRouter builds a session router over the configured backends.
func NewRouter(cfg RouterConfig) (*Router, error) { return cluster.New(cfg) }

// PlaceSession returns which backend owns sessionID under the router's
// pinned rendezvous placement — every replica agrees with no shared
// state.
func PlaceSession(sessionID string, backends []string) string {
	return cluster.Place(sessionID, backends)
}

// NewMulti preprocesses the shared division and returns a multi-target
// tracker; targets are created lazily per ID.
func NewMulti(cfg Config) (*MultiTracker, error) { return core.NewMulti(cfg) }

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// NewRect builds a rectangle from two opposite corners in any order.
func NewRect(a, b Point) Rect { return geom.NewRect(a, b) }

// NewStream returns a deterministic random stream rooted at seed.
func NewStream(seed uint64) *Stream { return randx.New(seed) }

// DefaultModel returns the paper's Table 1 signal model (β=4, σ_X=6).
func DefaultModel() Model { return rf.Default() }

// DeployGrid places n sensors on a regular grid in the field.
func DeployGrid(field Rect, n int) Deployment { return deploy.Grid(field, n) }

// DeployRandom places n sensors uniformly at random.
func DeployRandom(field Rect, n int, rng *Stream) Deployment {
	return deploy.Random(field, n, rng)
}

// DeployCross places n sensors in the "+" layout of the paper's outdoor
// system, with the given arm radius.
func DeployCross(field Rect, n int, arm float64) Deployment {
	return deploy.Cross(field, n, arm)
}

// RandomWaypoint returns the random waypoint mobility model used by the
// paper's simulations: uniform destinations, uniform speed in
// [vMin, vMax], precomputed for duration seconds.
func RandomWaypoint(field Rect, vMin, vMax, duration float64, rng *Stream) Mobility {
	return mobility.RandomWaypoint(field, vMin, vMax, duration, rng)
}

// Waypoints returns a constant-speed piecewise-linear mobility model.
func Waypoints(pts []Point, speed float64) Mobility {
	return mobility.Waypoints(pts, speed)
}

// SampleTrace evaluates a mobility model every 1/rate seconds over
// [0, duration] and returns the positions with their timestamps.
func SampleTrace(m Mobility, duration, rate float64) (pts []Point, times []float64) {
	tps := mobility.Sample(m, duration, rate)
	pts = make([]Point, len(tps))
	times = make([]float64, len(tps))
	for i, tp := range tps {
		pts[i] = tp.Pos
		times[i] = tp.T
	}
	return pts, times
}

// DefaultConfig returns a Config with the paper's Table 1 settings for
// the given deployment: β=4, σ_X=6, ε=1 dBm, k=5 sampling times, R=40 m
// sensing range, 1 m division cells.
func DefaultConfig(dep Deployment) Config {
	return Config{
		Field:         dep.Field,
		Nodes:         dep.Positions(),
		Model:         rf.Default(),
		Epsilon:       1,
		SamplingTimes: 5,
		Range:         40,
		CellSize:      1,
	}
}

// New preprocesses the field division and returns a Tracker.
func New(cfg Config) (*Tracker, error) { return core.New(cfg) }

// Track runs a whole trace through a fresh tracker and returns the
// per-point estimates and errors. It is the one-call entry point used by
// the quickstart example. times may be nil (the point index is used as
// the timestamp); a non-nil times must pair one timestamp with every
// trace point.
func Track(cfg Config, trace []Point, times []float64, seed uint64) ([]TrackedPoint, error) {
	if times != nil && len(times) != len(trace) {
		return nil, fmt.Errorf("fttt: trace has %d points but times has %d entries", len(trace), len(times))
	}
	tr, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return tr.Track(trace, times, randx.New(seed)), nil
}

// TrackParallel tracks several independent traces concurrently over one
// shared field division, fanning the traces across workers goroutines
// (≤ 0 selects the machine's CPU count; 1 is serial). The division is
// preprocessed once; each trace runs on its own cheap tracker clone with
// a per-trace random substream, so the result is identical for every
// worker count — and identical to calling Track on each trace with that
// substream. See DESIGN.md §8 for the concurrency model.
func TrackParallel(cfg Config, traces [][]Point, times [][]float64, seed uint64, workers int) ([][]TrackedPoint, error) {
	tr, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return tr.TrackParallel(traces, times, randx.New(seed), workers)
}

// MeanError returns the mean tracking error of a tracked trace. An
// empty trace yields the sentinel 0, not NaN; use MeanErrorOK to
// distinguish "no points" from a genuinely zero mean.
func MeanError(pts []TrackedPoint) float64 {
	m, _ := MeanErrorOK(pts)
	return m
}

// MeanErrorOK is MeanError with an explicit emptiness signal: ok is
// false (and the mean 0) when there are no points to average.
func MeanErrorOK(pts []TrackedPoint) (mean float64, ok bool) {
	if len(pts) == 0 {
		return 0, false
	}
	var sum float64
	for _, p := range pts {
		sum += p.Error
	}
	return sum / float64(len(pts)), true
}

// RequiredSamplingTimes returns the minimum k so the probability of
// capturing all flips among nPairs pairs exceeds lambda (Sec. 5.1).
func RequiredSamplingTimes(nPairs int, lambda float64) int {
	return core.RequiredSamplingTimes(nPairs, lambda)
}
