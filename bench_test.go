// Benchmarks regenerating every table and figure of the paper (DESIGN.md
// §4). Each BenchmarkFig*/BenchmarkTable* runs the corresponding
// experiment driver at reduced scale per iteration, so
//
//	go test -bench=. -benchmem
//
// exercises the entire evaluation pipeline; cmd/fttt-bench prints the
// full-scale rows. Micro-benchmarks for the core primitives (division,
// sampling vector construction, the two matchers) quantify the
// complexity claims of Sec. 4.4.
package fttt_test

import (
	"runtime"
	"testing"

	"fttt/internal/core"
	"fttt/internal/deploy"
	"fttt/internal/experiments"
	"fttt/internal/field"
	"fttt/internal/geom"
	"fttt/internal/match"
	"fttt/internal/obs"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/sampling"
)

func benchParams() experiments.Params {
	p := experiments.Quick()
	p.Duration = 10
	p.Trials = 1
	return p
}

// BenchmarkTable1 measures the preprocessing a Table 1 configuration
// implies: building the uncertain-boundary division for 20 nodes.
func BenchmarkTable1Preprocess(b *testing.B) {
	fieldRect := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	dep := deploy.Grid(fieldRect, 20)
	model := rf.Default()
	rc, err := field.NewRatioClassifier(dep.Positions(), model.UncertaintyC(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := field.Divide(fieldRect, rc, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11a(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11a(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11bc(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11bc(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12a(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12a(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12b(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12b(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12cd(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12cd(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13(b *testing.B) {
	p := benchParams()
	p.Duration = 20
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSamplingTimes(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		experiments.SamplingTimes(p, 6, []int{3, 5, 9}, 2000)
	}
}

func BenchmarkErrorScaling(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ErrorScaling(p, []int{3, 9}, []int{15}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBoundaryAblation(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BoundaryAblation(p, []int{12}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMethodComparison(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.MethodComparison(p, []int{12}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSmoothing(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Smoothing(p, []int{12}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetworkLifetime(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NetworkLifetime(p, 16, 4, 2000, 5e-4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSyncAccuracy(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SyncAccuracy(p, []float64{30, 120}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks for the Sec. 4.4 complexity claims ---

func matcherFixture(b *testing.B, n int) (*field.Division, []geom.Point, *sampling.Sampler) {
	b.Helper()
	fieldRect := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	dep := deploy.Random(fieldRect, n, randx.New(5))
	model := rf.Default()
	rc, err := field.NewRatioClassifier(dep.Positions(), model.UncertaintyC(1))
	if err != nil {
		b.Fatal(err)
	}
	div, err := field.Divide(fieldRect, rc, 2)
	if err != nil {
		b.Fatal(err)
	}
	s := &sampling.Sampler{Model: model, Nodes: dep.Positions(), Range: 40, Epsilon: 1}
	return div, dep.Positions(), s
}

func benchMatcher(b *testing.B, n int, mk func(div *field.Division) match.Matcher) {
	div, _, s := matcherFixture(b, n)
	m := mk(div)
	rng := randx.New(9)
	v := s.Sample(geom.Pt(47, 53), 5, rng).Vector()
	prev := div.FaceAt(geom.Pt(50, 50))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := m.Match(v, prev)
		prev = r.Face
	}
}

func BenchmarkMatcherExhaustiveN9(b *testing.B) {
	benchMatcher(b, 9, func(d *field.Division) match.Matcher { return &match.Exhaustive{Div: d} })
}

func BenchmarkMatcherExhaustiveN25(b *testing.B) {
	benchMatcher(b, 25, func(d *field.Division) match.Matcher { return &match.Exhaustive{Div: d} })
}

func BenchmarkMatcherHeuristicN9(b *testing.B) {
	benchMatcher(b, 9, func(d *field.Division) match.Matcher { return &match.Heuristic{Div: d} })
}

func BenchmarkMatcherHeuristicN25(b *testing.B) {
	benchMatcher(b, 25, func(d *field.Division) match.Matcher { return &match.Heuristic{Div: d} })
}

func BenchmarkSamplingVector(b *testing.B) {
	_, _, s := matcherFixture(b, 25)
	g := s.Sample(geom.Pt(47, 53), 5, randx.New(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Vector()
	}
}

func BenchmarkExtendedSamplingVector(b *testing.B) {
	_, _, s := matcherFixture(b, 25)
	g := s.Sample(geom.Pt(47, 53), 5, randx.New(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ExtendedVector()
	}
}

func BenchmarkLocalize(b *testing.B) {
	fieldRect := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	dep := deploy.Random(fieldRect, 20, randx.New(6))
	tr, err := core.New(core.Config{
		Field: fieldRect, Nodes: dep.Positions(), Model: rf.Default(),
		Epsilon: 1, SamplingTimes: 5, Range: 40, CellSize: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Localize(geom.Pt(40, 60), rng.SplitN("loc", i))
	}
}

// BenchmarkLocalizeInstrumented is BenchmarkLocalize with a live
// telemetry registry attached; comparing the two quantifies the
// bookkeeping overhead (the nil-registry fast path in BenchmarkLocalize
// must stay within a few percent of the seed numbers).
func BenchmarkLocalizeInstrumented(b *testing.B) {
	fieldRect := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	dep := deploy.Random(fieldRect, 20, randx.New(6))
	tr, err := core.New(core.Config{
		Field: fieldRect, Nodes: dep.Positions(), Model: rf.Default(),
		Epsilon: 1, SamplingTimes: 5, Range: 40, CellSize: 2,
		Obs: obs.NewRegistry(),
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Localize(geom.Pt(40, 60), rng.SplitN("loc", i))
	}
}

// BenchmarkDivideSerial and BenchmarkDivideParallel compare the
// signature-pass construction cost for one worker against the machine's
// CPU count (the Divide default). On a single-core box they coincide;
// the byte-identical-output guarantee is covered by the field tests.
func BenchmarkDivideSerial(b *testing.B)   { benchDivide(b, 1) }
func BenchmarkDivideParallel(b *testing.B) { benchDivide(b, runtime.NumCPU()) }

func benchDivide(b *testing.B, workers int) {
	fieldRect := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	dep := deploy.Grid(fieldRect, 20)
	rc, err := field.NewRatioClassifier(dep.Positions(), rf.Default().UncertaintyC(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := field.DivideWorkers(fieldRect, rc, 1, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiTargetSerial / BenchmarkMultiTargetParallel measure one
// LocalizeAll round over 8 targets, serial vs pooled across all CPUs.
func BenchmarkMultiTargetSerial(b *testing.B)   { benchMultiTarget(b, 1) }
func BenchmarkMultiTargetParallel(b *testing.B) { benchMultiTarget(b, 0) }

func benchMultiTarget(b *testing.B, workers int) {
	fieldRect := geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100))
	dep := deploy.Random(fieldRect, 20, randx.New(6))
	mt, err := core.NewMulti(core.Config{
		Field: fieldRect, Nodes: dep.Positions(), Model: rf.Default(),
		Epsilon: 1, SamplingTimes: 5, Range: 40, CellSize: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	const targets = 8
	batch := make([]core.TargetPosition, targets)
	for g := range batch {
		batch[g] = core.TargetPosition{
			ID:  string(rune('a' + g)),
			Pos: geom.Pt(12+float64(g*11), 85-float64(g*9)),
		}
	}
	rng := randx.New(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mt.LocalizeAll(batch, rng.SplitN("round", i), workers); err != nil {
			b.Fatal(err)
		}
	}
}
