//go:build race

package fttt_test

// raceEnabled reports whether the race detector is compiled in; the
// allocation gates in alloc_test.go skip under it (instrumentation adds
// allocations that are not the code's own).
const raceEnabled = true
