// Runnable godoc examples for the fttt facade. Every example is
// seeded, so the printed output is deterministic and `go test` verifies
// it — these double as the repo's smallest end-to-end regression tests.
package fttt_test

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"fttt"
)

// ExampleTracker_Localize is the quickstart path: deploy a grid, build
// a tracker with the paper's Table 1 parameters, localize one target
// position with a seeded stream.
func ExampleTracker_Localize() {
	field := fttt.NewRect(fttt.Pt(0, 0), fttt.Pt(100, 100))
	dep := fttt.DeployGrid(field, 16)
	tr, err := fttt.New(fttt.DefaultConfig(dep))
	if err != nil {
		log.Fatal(err)
	}
	est := tr.Localize(fttt.Pt(42, 58), fttt.NewStream(1))
	fmt.Printf("estimate (%.1f, %.1f), error %.1f m\n",
		est.Pos.X, est.Pos.Y, est.Pos.Dist(fttt.Pt(42, 58)))
	// Output:
	// estimate (44.5, 56.5), error 2.9 m
}

// ExampleTrackParallel tracks two independent targets concurrently over
// one shared field division; results are identical for every worker
// count (DESIGN.md §8).
func ExampleTrackParallel() {
	field := fttt.NewRect(fttt.Pt(0, 0), fttt.Pt(100, 100))
	cfg := fttt.DefaultConfig(fttt.DeployGrid(field, 16))
	traces := [][]fttt.Point{
		{fttt.Pt(20, 20), fttt.Pt(25, 24), fttt.Pt(30, 28)},
		{fttt.Pt(80, 70), fttt.Pt(76, 66), fttt.Pt(72, 62)},
	}
	tracked, err := fttt.TrackParallel(cfg, traces, nil, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	for i, pts := range tracked {
		fmt.Printf("trace %d: %d points, mean error %.1f m\n", i, len(pts), fttt.MeanError(pts))
	}
	// Output:
	// trace 0: 3 points, mean error 10.3 m
	// trace 1: 3 points, mean error 6.8 m
}

// ExampleNewServer drives the tracking-as-a-service layer in process:
// create a session (16 grid nodes, seeded), localize a target through
// the admission queue and micro-batcher, read the estimate.
func ExampleNewServer() {
	srv := fttt.NewServer(fttt.ServeConfig{})
	sess, err := srv.CreateSession(fttt.SessionConfig{Seed: 6, GridNodes: 16})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.CloseSession(sess.ID())

	res, err := sess.Localize(context.Background(), "rover", fttt.Pt(37, 53))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rover seq %d: estimate (%.1f, %.1f)\n",
		res.Seq, res.Estimate.Pos.X, res.Estimate.Pos.Y)
	// Output:
	// rover seq 0: estimate (40.5, 53.5)
}

// ExampleNewRouter shards the serving layer: two backends behind a
// consistent-hash session router. The router assigns the session ID
// (c1, c2, …) so its owner is fixed by the pinned placement before any
// backend sees the create, and a localize through the router answers
// byte-identically to a direct hit on the owner.
func ExampleNewRouter() {
	b1 := httptest.NewServer(fttt.NewServer(fttt.ServeConfig{}))
	defer b1.Close()
	b2 := httptest.NewServer(fttt.NewServer(fttt.ServeConfig{}))
	defer b2.Close()

	router, err := fttt.NewRouter(fttt.RouterConfig{Backends: []fttt.ClusterBackend{
		{Name: "b1", URL: b1.URL},
		{Name: "b2", URL: b2.URL},
	}})
	if err != nil {
		log.Fatal(err)
	}
	defer router.Close()
	front := httptest.NewServer(router)
	defer front.Close()
	client := front.Client()

	resp, err := client.Post(front.URL+"/v1/sessions", "application/json",
		strings.NewReader(`{"seed":6,"gridNodes":16}`))
	if err != nil {
		log.Fatal(err)
	}
	var sw struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sw); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("session %s owned by %s\n", sw.ID, fttt.PlaceSession(sw.ID, []string{"b1", "b2"}))

	resp, err = client.Post(front.URL+"/v1/sessions/"+sw.ID+"/localize", "application/json",
		strings.NewReader(`{"target":"rover","x":37,"y":53}`))
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("localize: status %d", resp.StatusCode)
	}
	var est fttt.EstimateWire
	if err := json.NewDecoder(resp.Body).Decode(&est); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("rover seq %d: estimate (%.1f, %.1f)\n", est.Seq, est.X, est.Y)
	// Output:
	// session c1 owned by b2
	// rover seq 0: estimate (40.5, 53.5)
}
