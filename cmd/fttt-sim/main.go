// Command fttt-sim runs one target-tracking simulation and reports the
// error statistics: deploy sensors, generate a random-waypoint trace,
// track it with the selected strategy, print per-run summaries.
//
// Usage:
//
//	fttt-sim -n 20 -k 5 -eps 1 -duration 60 -strategy fttt-ext -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"fttt/internal/baseline"
	"fttt/internal/core"
	"fttt/internal/deploy"
	"fttt/internal/geom"
	"fttt/internal/mobility"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/sampling"
	"fttt/internal/stats"
)

func main() {
	var (
		n         = flag.Int("n", 20, "number of sensor nodes")
		layout    = flag.String("deploy", "random", "deployment: random | grid | cross")
		k         = flag.Int("k", 5, "grouping sampling times")
		eps       = flag.Float64("eps", 1, "sensing resolution ε (dBm)")
		sigma     = flag.Float64("sigma", 6, "noise σ_X (dB)")
		beta      = flag.Float64("beta", 4, "path-loss exponent β")
		rng       = flag.Float64("range", 40, "sensing range R (m)")
		size      = flag.Float64("field", 100, "square field edge (m)")
		cell      = flag.Float64("cell", 1, "grid division cell size (m)")
		duration  = flag.Float64("duration", 60, "tracking duration (s)")
		locPeriod = flag.Float64("period", 0.5, "localization period (s)")
		vmin      = flag.Float64("vmin", 1, "minimum target speed (m/s)")
		vmax      = flag.Float64("vmax", 5, "maximum target speed (m/s)")
		loss      = flag.Float64("loss", 0, "report loss probability")
		strategy  = flag.String("strategy", "fttt", "strategy: fttt | fttt-ext | pm | mle")
		seed      = flag.Uint64("seed", 1, "root random seed")
		trials    = flag.Int("trials", 1, "independent repetitions (fresh deployment + trace per trial)")
		verbose   = flag.Bool("v", false, "print per-point errors")
	)
	flag.Parse()

	if *trials < 1 {
		*trials = 1
	}
	var all []float64
	for trial := 0; trial < *trials; trial++ {
		errs, err := run(*n, *layout, *k, *eps, *sigma, *beta, *rng, *size, *cell,
			*duration, *locPeriod, *vmin, *vmax, *loss, *strategy,
			*seed+uint64(trial), *verbose && *trials == 1, *trials == 1)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fttt-sim:", err)
			os.Exit(1)
		}
		all = append(all, errs...)
	}
	if *trials > 1 {
		s := stats.Summarize(all)
		boot := randx.New(*seed).Split("bootstrap")
		lo, hi := stats.BootstrapCI(all, 0.95, 2000, boot.Intn)
		fmt.Printf("strategy=%s n=%d k=%d trials=%d localizations=%d\n",
			*strategy, *n, *k, *trials, s.N)
		fmt.Printf("error: mean=%.2fm (95%% CI %.2f–%.2f) stddev=%.2fm median=%.2fm p90=%.2fm max=%.2fm\n",
			s.Mean, lo, hi, s.StdDev, s.Median, s.P90, s.Max)
	}
}

func run(n int, layout string, k int, eps, sigma, beta, rng, size, cell,
	duration, locPeriod, vmin, vmax, loss float64, strategy string, seed uint64,
	verbose, report bool) ([]float64, error) {

	field := geom.NewRect(geom.Pt(0, 0), geom.Pt(size, size))
	root := randx.New(seed)
	model := rf.Default()
	model.SigmaX = sigma
	model.Beta = beta
	if err := model.Validate(); err != nil {
		return nil, err
	}

	var dep deploy.Deployment
	switch layout {
	case "random":
		dep = deploy.Random(field, n, root.Split("deploy"))
	case "grid":
		dep = deploy.Grid(field, n)
	case "cross":
		dep = deploy.Cross(field, n, size*0.3)
	default:
		return nil, fmt.Errorf("unknown deployment %q", layout)
	}

	mob := mobility.RandomWaypoint(field, vmin, vmax, duration, root.Split("mobility"))
	tps := mobility.Sample(mob, duration, 1/locPeriod)
	sampler := &sampling.Sampler{
		Model: model, Nodes: dep.Positions(),
		Range: rng, ReportLoss: loss, Epsilon: eps,
	}

	groups := make([]*sampling.Group, len(tps))
	g := root.Split("groups")
	for i, tp := range tps {
		groups[i] = sampler.Sample(tp.Pos, k, g.SplitN("loc", i))
	}

	var estimate func(i int) geom.Point
	switch strategy {
	case "fttt", "fttt-ext":
		cfg := core.Config{
			Field: field, Nodes: dep.Positions(), Model: model,
			Epsilon: eps, SamplingTimes: k, Range: rng, CellSize: cell,
		}
		if strategy == "fttt-ext" {
			cfg.Variant = core.Extended
		}
		tr, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		if report {
			fmt.Printf("division: %d faces, %d links, C=%.4f\n",
				tr.Division().NumFaces(), tr.Division().NeighborLinkCount(), cfg.UncertaintyC())
		}
		estimate = func(i int) geom.Point { return tr.LocalizeGroup(groups[i]).Pos }
	case "pm":
		pm, err := baseline.NewPM(field, dep.Positions(), cell,
			baseline.PMConfig{MaxVelocity: vmax, Period: locPeriod})
		if err != nil {
			return nil, err
		}
		estimate = func(i int) geom.Point { return pm.LocalizeGroup(groups[i]) }
	case "mle":
		d, err := baseline.NewDirectMLE(field, dep.Positions(), cell)
		if err != nil {
			return nil, err
		}
		estimate = func(i int) geom.Point { return d.LocalizeGroup(groups[i]) }
	default:
		return nil, fmt.Errorf("unknown strategy %q", strategy)
	}

	errs := make([]float64, len(tps))
	for i := range tps {
		est := estimate(i)
		errs[i] = est.Dist(tps[i].Pos)
		if verbose {
			fmt.Printf("t=%6.2f  true=%v  est=%v  err=%.2f\n", tps[i].T, tps[i].Pos, est, errs[i])
		}
	}

	if report {
		s := stats.Summarize(errs)
		fmt.Printf("strategy=%s n=%d k=%d eps=%.1f seed=%d localizations=%d\n",
			strategy, n, k, eps, seed, s.N)
		fmt.Printf("error: mean=%.2fm stddev=%.2fm rmse=%.2fm median=%.2fm p90=%.2fm max=%.2fm\n",
			s.Mean, s.StdDev, s.RMSE, s.Median, s.P90, s.Max)
	}
	return errs, nil
}
