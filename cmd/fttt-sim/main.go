// Command fttt-sim runs one target-tracking simulation and reports the
// error statistics: deploy sensors, generate a random-waypoint trace,
// track it with the selected strategy, print per-run summaries.
//
// With -net the reports travel through the simulated WSN substrate
// (multihop forwarding, loss, energy, latency) instead of the ideal
// sampler; with -telemetry-addr the run exposes live Prometheus metrics,
// expvar and pprof while it executes.
//
// With -targets N (sampler mode) one MultiTracker serves N concurrent
// targets over a single shared division, batching each round's
// localizations across a -parallel worker pool; estimates are identical
// for every worker count.
//
// Usage:
//
//	fttt-sim -n 20 -k 5 -eps 1 -duration 60 -strategy fttt-ext -seed 7
//	fttt-sim -net -duration 600 -telemetry-addr :9090   # curl :9090/metrics
//	fttt-sim -targets 8 -parallel 0 -duration 60        # multi-target serving
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fttt/internal/baseline"
	"fttt/internal/byz"
	"fttt/internal/core"
	"fttt/internal/deploy"
	"fttt/internal/faults"
	"fttt/internal/geom"
	"fttt/internal/mobility"
	"fttt/internal/obs"
	"fttt/internal/pipeline"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/sampling"
	"fttt/internal/stats"
	"fttt/internal/wsnnet"
)

// simConfig collects the per-run knobs (one trial = one simConfig run).
type simConfig struct {
	n                          int
	layout                     string
	k                          int
	eps, sigma, beta           float64
	rng, size, cell            float64
	duration, locPeriod        float64
	vmin, vmax, loss           float64
	strategy                   string
	seed                       uint64
	verbose, report            bool
	net                        bool
	commRange, hopLoss, hopDel float64
	targets, parallel          int
	script                     *faults.Script
	starFrac, retryBackoff     float64
	defense                    bool
	obs                        *obs.Registry
	// rec, when non-nil, records structured traces of every round; main
	// writes the JSONL export to -trace at exit.
	rec *obs.Recorder
}

// simResult is what one trial contributes to the end-of-run summary.
type simResult struct {
	errs      []float64
	rounds    int
	heard     int
	delivered int
}

func main() {
	var (
		n         = flag.Int("n", 20, "number of sensor nodes")
		layout    = flag.String("deploy", "random", "deployment: random | grid | cross")
		k         = flag.Int("k", 5, "grouping sampling times")
		eps       = flag.Float64("eps", 1, "sensing resolution ε (dBm)")
		sigma     = flag.Float64("sigma", 6, "noise σ_X (dB)")
		beta      = flag.Float64("beta", 4, "path-loss exponent β")
		rng       = flag.Float64("range", 40, "sensing range R (m)")
		size      = flag.Float64("field", 100, "square field edge (m)")
		cell      = flag.Float64("cell", 1, "grid division cell size (m)")
		duration  = flag.Float64("duration", 60, "tracking duration (s)")
		locPeriod = flag.Float64("period", 0.5, "localization period (s)")
		vmin      = flag.Float64("vmin", 1, "minimum target speed (m/s)")
		vmax      = flag.Float64("vmax", 5, "maximum target speed (m/s)")
		loss      = flag.Float64("loss", 0, "report loss probability (sampler mode)")
		strategy  = flag.String("strategy", "fttt", "strategy: fttt | fttt-ext | pm | mle")
		seed      = flag.Uint64("seed", 1, "root random seed")
		trials    = flag.Int("trials", 1, "independent repetitions (fresh deployment + trace per trial)")
		verbose   = flag.Bool("v", false, "print per-point errors")
		netMode   = flag.Bool("net", false, "collect reports over the simulated WSN substrate (fttt strategies only)")
		commRange = flag.Float64("comm", 50, "mote radio range (m, -net mode)")
		hopLoss   = flag.Float64("hoploss", 0.05, "per-hop loss probability (-net mode)")
		hopDelay  = flag.Float64("hopdelay", 0.002, "per-hop delay (s, -net mode)")
		targets   = flag.Int("targets", 1, "number of concurrent targets (sampler mode, fttt strategies)")
		parallel  = flag.Int("parallel", 0, "multi-target localization workers (0 = all CPUs, 1 = serial; with -targets > 1)")
		faultSpec = flag.String("faults", "", "fault scenario: a script file path (or @path), or inline directives like 'crash at=20 frac=0.3; burst loss=0.9' (fttt strategies)")
		starFrac  = flag.Float64("starfrac", 0, "star-fraction degradation threshold arming retry + extrapolation (0 = off)")
		backoff   = flag.Float64("retrybackoff", -1, "virtual-time backoff before a degraded round's re-collection (s); -1 = period/5")
		defense   = flag.Bool("defense", false, "arm the Byzantine-sensing defense: trust-weighted matching + quorum voting (fttt strategies)")
		telemetry = flag.String("telemetry-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address during the run")
		tracePath = flag.String("trace", "", "write a JSONL trace recording of the run to this path (convert with fttt-trace)")
	)
	flag.Parse()

	if *trials < 1 {
		*trials = 1
	}
	reg := obs.NewRegistry()
	if *telemetry != "" {
		srv, err := obs.Serve(*telemetry, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fttt-sim: telemetry:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics (expvar at /debug/vars, pprof at /debug/pprof/)\n", srv.Addr())
	}

	var script *faults.Script
	if *faultSpec != "" {
		var err error
		script, err = faults.Load(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fttt-sim:", err)
			os.Exit(1)
		}
	}
	if *backoff < 0 {
		*backoff = *locPeriod / 5
	}

	cfg := simConfig{
		n: *n, layout: *layout, k: *k,
		eps: *eps, sigma: *sigma, beta: *beta,
		rng: *rng, size: *size, cell: *cell,
		duration: *duration, locPeriod: *locPeriod,
		vmin: *vmin, vmax: *vmax, loss: *loss,
		strategy: *strategy,
		verbose:  *verbose && *trials == 1,
		report:   *trials == 1,
		net:      *netMode, commRange: *commRange, hopLoss: *hopLoss, hopDel: *hopDelay,
		targets: *targets, parallel: *parallel,
		script: script, starFrac: *starFrac, retryBackoff: *backoff,
		defense: *defense,
		obs:     reg,
	}
	if *tracePath != "" {
		cfg.rec = obs.NewRecorder(0)
	}

	var all []float64
	var rounds, heard, delivered int
	for trial := 0; trial < *trials; trial++ {
		cfg.seed = *seed + uint64(trial)
		res, err := run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fttt-sim:", err)
			os.Exit(1)
		}
		all = append(all, res.errs...)
		rounds += res.rounds
		heard += res.heard
		delivered += res.delivered
	}
	if *trials > 1 {
		s := stats.Summarize(all)
		boot := randx.New(*seed).Split("bootstrap")
		lo, hi := stats.BootstrapCI(all, 0.95, 2000, boot.Intn)
		fmt.Printf("strategy=%s n=%d k=%d trials=%d localizations=%d\n",
			*strategy, *n, *k, *trials, s.N)
		fmt.Printf("error: mean=%.2fm (95%% CI %.2f–%.2f) stddev=%.2fm median=%.2fm p90=%.2fm max=%.2fm\n",
			s.Mean, lo, hi, s.StdDev, s.Median, s.P90, s.Max)
	}
	printSummary(reg, *netMode, rounds, heard, delivered, all)
	if cfg.rec != nil {
		f, err := os.Create(*tracePath)
		if err == nil {
			err = obs.WriteJSONL(f, cfg.rec.Records())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "fttt-sim: trace:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: %d records written to %s (%d dropped by the ring)\n",
			len(cfg.rec.Records()), *tracePath, cfg.rec.Dropped())
	}
}

// printSummary renders the end-of-run metrics table so every invocation
// is self-describing: how many rounds ran, how many reports were lost,
// how accurate the track was and how slow the tail localization was.
func printSummary(reg *obs.Registry, netMode bool, rounds, heard, delivered int, errs []float64) {
	lossPct := 0.0
	if heard > 0 {
		lossPct = 100 * (1 - float64(delivered)/float64(heard))
	}
	fmt.Println("== run summary ==")
	fmt.Printf("  %-22s %d\n", "rounds", rounds)
	fmt.Printf("  %-22s %d\n", "reports heard", heard)
	fmt.Printf("  %-22s %d (%.1f%% lost)\n", "reports delivered", delivered, lossPct)
	fmt.Printf("  %-22s %.2f m\n", "mean error", stats.Mean(errs))
	// Sampler mode times the whole estimate call; net mode attaches the
	// registry to the tracker, whose localize histogram covers the same.
	locHist := reg.Histogram("fttt_sim_localize_seconds", nil)
	if locHist.Count() == 0 {
		locHist = reg.Histogram("fttt_core_localize_seconds", nil)
	}
	fmt.Printf("  %-22s %.3f ms\n", "p95 localize (wall)", locHist.Quantile(0.95)*1e3)
	if deg := reg.Counter("fttt_core_degraded_total").Value(); deg > 0 {
		fmt.Printf("  %-22s %.0f (retried %.0f, extrapolated %.0f)\n", "degraded rounds", deg,
			reg.Counter("fttt_core_retries_total").Value(),
			reg.Counter("fttt_core_extrapolated_total").Value())
	}
	if netMode {
		netP95 := reg.Histogram("fttt_net_delivery_latency_seconds", nil).Quantile(0.95)
		fmt.Printf("  %-22s %.1f ms\n", "p95 delivery (virtual)", netP95*1e3)
		fmt.Printf("  %-22s %.2f mJ\n", "energy spent",
			reg.Counter("fttt_net_energy_joules_total").Value()*1e3)
	}
}

func run(c simConfig) (simResult, error) {
	field := geom.NewRect(geom.Pt(0, 0), geom.Pt(c.size, c.size))
	root := randx.New(c.seed)
	model := rf.Default()
	model.SigmaX = c.sigma
	model.Beta = c.beta
	if err := model.Validate(); err != nil {
		return simResult{}, err
	}

	var dep deploy.Deployment
	switch c.layout {
	case "random":
		dep = deploy.Random(field, c.n, root.Split("deploy"))
	case "grid":
		dep = deploy.Grid(field, c.n)
	case "cross":
		dep = deploy.Cross(field, c.n, c.size*0.3)
	default:
		return simResult{}, fmt.Errorf("unknown deployment %q", c.layout)
	}

	if c.defense && c.strategy != "fttt" && c.strategy != "fttt-ext" {
		return simResult{}, fmt.Errorf("-defense supports the fttt strategies, not %q", c.strategy)
	}

	if c.targets > 1 {
		if c.net {
			return simResult{}, fmt.Errorf("-targets > 1 requires sampler mode (drop -net)")
		}
		if c.strategy != "fttt" && c.strategy != "fttt-ext" {
			return simResult{}, fmt.Errorf("-targets supports the fttt strategies, not %q", c.strategy)
		}
		if c.script != nil {
			return simResult{}, fmt.Errorf("-faults is not supported with -targets > 1")
		}
		return runMulti(c, field, dep, model, root)
	}

	mob := mobility.RandomWaypoint(field, c.vmin, c.vmax, c.duration, root.Split("mobility"))
	if c.net {
		return runNet(c, field, dep, model, mob, root)
	}
	return runSampler(c, field, dep, model, mob, root)
}

// runMulti serves several concurrent targets from one MultiTracker over
// the shared division: each round batches every target's localization
// through LocalizeAll's worker pool. Results are deterministic for every
// -parallel value; the wall-clock throughput line shows the speedup.
func runMulti(c simConfig, field geom.Rect, dep deploy.Deployment, model rf.Model,
	root *randx.Stream) (simResult, error) {

	variant := core.Basic
	if c.strategy == "fttt-ext" {
		variant = core.Extended
	}
	mcfg := core.Config{
		Field: field, Nodes: dep.Positions(), Model: model,
		Epsilon: c.eps, SamplingTimes: c.k, Range: c.rng, CellSize: c.cell,
		ReportLoss: c.loss, Variant: variant, Obs: c.obs,
	}
	if c.defense {
		mcfg.Defense = &byz.Config{Enabled: true}
	}
	if c.rec != nil {
		// A bare nil-pointer assignment would produce a typed-nil Tracer
		// interface and defeat the tracker's nil fast path.
		mcfg.Tracer = c.rec
	}
	mt, err := core.NewMulti(mcfg)
	if err != nil {
		return simResult{}, err
	}

	// One independent random-waypoint trace per target.
	ids := make([]string, c.targets)
	mobs := make([]mobility.Model, c.targets)
	for t := 0; t < c.targets; t++ {
		ids[t] = fmt.Sprintf("target-%02d", t)
		mobs[t] = mobility.RandomWaypoint(field, c.vmin, c.vmax, c.duration, root.SplitN("mobility", t))
	}
	if c.report {
		div := mt.Division()
		fmt.Printf("division: %d faces, %d links; targets=%d workers=%d\n",
			div.NumFaces(), div.NeighborLinkCount(), c.targets, c.parallel)
	}

	rounds := int(c.duration/c.locPeriod) + 1
	perTarget := make([][]float64, c.targets)
	res := simResult{}
	batch := make([]core.TargetPosition, c.targets)
	wallStart := time.Now()
	for i := 0; i < rounds; i++ {
		tm := float64(i) * c.locPeriod
		for t := 0; t < c.targets; t++ {
			batch[t] = core.TargetPosition{ID: ids[t], Pos: mobs[t].At(tm)}
		}
		ests, err := mt.LocalizeAll(batch, root.SplitN("round", i), c.parallel)
		if err != nil {
			return simResult{}, err
		}
		for t := 0; t < c.targets; t++ {
			e := ests[ids[t]].Pos.Dist(batch[t].Pos)
			perTarget[t] = append(perTarget[t], e)
			res.errs = append(res.errs, e)
			res.delivered += ests[ids[t]].Reported
			res.heard += inRange(dep.Positions(), batch[t].Pos, c.rng)
		}
		res.rounds += c.targets
	}
	wall := time.Since(wallStart)

	if c.report {
		for t := 0; t < c.targets; t++ {
			s := stats.Summarize(perTarget[t])
			fmt.Printf("%s: mean=%.2fm median=%.2fm p90=%.2fm max=%.2fm\n",
				ids[t], s.Mean, s.Median, s.P90, s.Max)
		}
		s := stats.Summarize(res.errs)
		fmt.Printf("strategy=%s targets=%d n=%d k=%d seed=%d localizations=%d\n",
			c.strategy, c.targets, c.n, c.k, c.seed, s.N)
		fmt.Printf("error: mean=%.2fm stddev=%.2fm rmse=%.2fm median=%.2fm p90=%.2fm max=%.2fm\n",
			s.Mean, s.StdDev, s.RMSE, s.Median, s.P90, s.Max)
		fmt.Printf("throughput: %d localizations in %v (%.0f/s, workers=%d)\n",
			s.N, wall.Round(time.Millisecond), float64(s.N)/wall.Seconds(), c.parallel)
	}
	return res, nil
}

// runNet drives the fttt strategies through the full online pipeline:
// wsnnet substrate → tracker → updates, all sharing the run registry.
func runNet(c simConfig, field geom.Rect, dep deploy.Deployment, model rf.Model,
	mob mobility.Model, root *randx.Stream) (simResult, error) {

	variant := core.Basic
	switch c.strategy {
	case "fttt":
	case "fttt-ext":
		variant = core.Extended
	default:
		return simResult{}, fmt.Errorf("-net supports the fttt strategies, not %q", c.strategy)
	}
	netCfg := wsnnet.Config{
		Nodes:        dep.Positions(),
		BaseStation:  geom.Pt(field.Center().X, field.Min.Y-5),
		Model:        model,
		SensingRange: c.rng,
		CommRange:    c.commRange,
		HopLoss:      c.hopLoss,
		HopDelay:     c.hopDel,
		ReportBits:   256,
		Epsilon:      c.eps,
		Obs:          c.obs,
	}
	if c.rec != nil {
		netCfg.Tracer = c.rec
	}
	if c.script != nil {
		// The scheduler rides the network's virtual clock: every
		// collection round's BeginRound seeks it to engine.Now().
		sched := faults.New(*c.script, c.n, c.seed)
		sched.SetGeometry(dep.Positions(), model)
		netCfg.Faults = sched
	}
	net, err := wsnnet.New(netCfg)
	if err != nil {
		return simResult{}, err
	}
	tcfg := core.Config{
		Field: field, Nodes: dep.Positions(), Model: model,
		Epsilon: c.eps, SamplingTimes: c.k, Range: c.rng, CellSize: c.cell,
		Variant: variant, StarFractionLimit: c.starFrac, Obs: c.obs,
	}
	if c.defense {
		tcfg.Defense = &byz.Config{Enabled: true}
	}
	pcfg := pipeline.Config{
		Net: net, Tracker: nil, Period: c.locPeriod, K: c.k,
		RetryBackoff: c.retryBackoff, Obs: c.obs,
	}
	if c.rec != nil {
		tcfg.Tracer = c.rec
		pcfg.Tracer = c.rec
	}
	tr, err := core.New(tcfg)
	if err != nil {
		return simResult{}, err
	}
	pcfg.Tracker = tr
	svc, err := pipeline.New(pcfg)
	if err != nil {
		return simResult{}, err
	}
	if c.report {
		fmt.Printf("division: %d faces, %d links; network: %d motes, mean hops %.2f\n",
			tr.Division().NumFaces(), tr.Division().NeighborLinkCount(), c.n, net.MeanHopCount())
	}
	updates := svc.Run(mob, c.duration, root.Split("pipeline"))
	res := simResult{rounds: len(updates)}
	for _, u := range updates {
		res.errs = append(res.errs, u.Error)
		res.heard += u.Stats.Heard
		res.delivered += u.Stats.Delivered
		if c.verbose {
			fmt.Printf("t=%6.2f  true=%v  est=%v  err=%.2f  delivered=%d/%d\n",
				u.T, u.True, u.Final, u.Error, u.Stats.Delivered, u.Stats.Heard)
		}
	}
	if c.report {
		s := stats.Summarize(res.errs)
		fmt.Printf("strategy=%s(net) n=%d k=%d eps=%.1f seed=%d localizations=%d\n",
			c.strategy, c.n, c.k, c.eps, c.seed, s.N)
		fmt.Printf("error: mean=%.2fm stddev=%.2fm rmse=%.2fm median=%.2fm p90=%.2fm max=%.2fm\n",
			s.Mean, s.StdDev, s.RMSE, s.Median, s.P90, s.Max)
		printDefenseVerdict(tr)
	}
	return res, nil
}

// runSampler is the classic ideal-collection path: pre-draw all grouping
// samplings, then run the chosen strategy over them.
func runSampler(c simConfig, field geom.Rect, dep deploy.Deployment, model rf.Model,
	mob mobility.Model, root *randx.Stream) (simResult, error) {

	tps := mobility.Sample(mob, c.duration, 1/c.locPeriod)
	sampler := &sampling.Sampler{
		Model: model, Nodes: dep.Positions(),
		Range: c.rng, ReportLoss: c.loss, Epsilon: c.eps,
	}
	var sched *faults.Scheduler
	if c.script != nil {
		sched = faults.New(*c.script, c.n, c.seed)
		// Colluders need the deployment geometry to fabricate
		// decoy-consistent RSS (without it they degrade to a fixed lie).
		sched.SetGeometry(dep.Positions(), model)
		sampler.Faults = sched
	}
	// The standalone sampler records its fault injections directly (the
	// groups are drawn outside any tracker round).
	sampler.Trace = c.rec

	// Groups are drawn lazily inside the round loop so the fault clock
	// tracks each round's time; each draw uses an independent "loc"
	// substream, so the draws match the eager pre-draw exactly.
	groups := make([]*sampling.Group, len(tps))
	g := root.Split("groups")
	sample := func(i int) *sampling.Group {
		if sched != nil {
			sched.Seek(tps[i].T)
		}
		return sampler.Sample(tps[i].Pos, c.k, g.SplitN("loc", i))
	}

	var estimate func(i int) geom.Point
	var defTr *core.Tracker // set when the defense is armed, for the verdict line
	switch c.strategy {
	case "fttt", "fttt-ext":
		cfg := core.Config{
			Field: field, Nodes: dep.Positions(), Model: model,
			Epsilon: c.eps, SamplingTimes: c.k, Range: c.rng, CellSize: c.cell,
			StarFractionLimit: c.starFrac, Obs: c.obs,
		}
		if c.defense {
			cfg.Defense = &byz.Config{Enabled: true}
		}
		if c.rec != nil {
			cfg.Tracer = c.rec
		}
		if c.strategy == "fttt-ext" {
			cfg.Variant = core.Extended
		}
		tr, err := core.New(cfg)
		if err != nil {
			return simResult{}, err
		}
		if c.report {
			fmt.Printf("division: %d faces, %d links, C=%.4f\n",
				tr.Division().NumFaces(), tr.Division().NeighborLinkCount(), cfg.UncertaintyC())
		}
		if c.defense {
			defTr = tr
		}
		estimate = func(i int) geom.Point {
			var recollect func() *sampling.Group
			if c.starFrac > 0 {
				recollect = func() *sampling.Group {
					if sched != nil && c.retryBackoff > 0 {
						sched.Seek(tps[i].T + c.retryBackoff)
					}
					return sampler.Sample(tps[i].Pos, c.k, g.SplitN("loc", i).Split("retry"))
				}
			}
			return tr.LocalizeGroupRetry(groups[i], recollect).Pos
		}
	case "pm":
		pm, err := baseline.NewPM(field, dep.Positions(), c.cell,
			baseline.PMConfig{MaxVelocity: c.vmax, Period: c.locPeriod})
		if err != nil {
			return simResult{}, err
		}
		estimate = func(i int) geom.Point { return pm.LocalizeGroup(groups[i]) }
	case "mle":
		d, err := baseline.NewDirectMLE(field, dep.Positions(), c.cell)
		if err != nil {
			return simResult{}, err
		}
		estimate = func(i int) geom.Point { return d.LocalizeGroup(groups[i]) }
	default:
		return simResult{}, fmt.Errorf("unknown strategy %q", c.strategy)
	}

	res := simResult{rounds: len(tps)}
	res.errs = make([]float64, len(tps))
	lat := c.obs.Histogram("fttt_sim_localize_seconds", obs.ExpBuckets(1e-5, 2, 16))
	for i := range tps {
		groups[i] = sample(i)
		start := time.Now()
		est := estimate(i)
		lat.Observe(time.Since(start).Seconds())
		res.errs[i] = est.Dist(tps[i].Pos)
		res.heard += inRange(dep.Positions(), tps[i].Pos, c.rng)
		res.delivered += groups[i].NumReported()
		if c.verbose {
			fmt.Printf("t=%6.2f  true=%v  est=%v  err=%.2f\n", tps[i].T, tps[i].Pos, est, res.errs[i])
		}
	}

	if c.report {
		s := stats.Summarize(res.errs)
		fmt.Printf("strategy=%s n=%d k=%d eps=%.1f seed=%d localizations=%d\n",
			c.strategy, c.n, c.k, c.eps, c.seed, s.N)
		fmt.Printf("error: mean=%.2fm stddev=%.2fm rmse=%.2fm median=%.2fm p90=%.2fm max=%.2fm\n",
			s.Mean, s.StdDev, s.RMSE, s.Median, s.P90, s.Max)
		printDefenseVerdict(defTr)
	}
	return res, nil
}

// printDefenseVerdict reports which nodes the armed defense convicted by
// the end of the run, with their residual trust. nil tr (defense off, or
// a non-tracker strategy) prints nothing.
func printDefenseVerdict(tr *core.Tracker) {
	if tr == nil || tr.Defense() == nil {
		return
	}
	d := tr.Defense()
	sus := d.Suspects()
	if len(sus) == 0 {
		fmt.Println("defense: armed, no suspects")
		return
	}
	fmt.Printf("defense: %d suspect(s):", len(sus))
	for _, i := range sus {
		fmt.Printf(" node %d (trust %.2f)", i, d.NodeTrust(i))
	}
	fmt.Println()
}

// inRange counts nodes within sensing range of p (0 range = all).
func inRange(nodes []geom.Point, p geom.Point, r float64) int {
	if r <= 0 {
		return len(nodes)
	}
	c := 0
	for _, q := range nodes {
		if q.Dist(p) <= r {
			c++
		}
	}
	return c
}
