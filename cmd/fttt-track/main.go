// Command fttt-track is the online tracking pipeline: it reads
// timestamped true target positions ("t x y" per line, or a trace CSV
// via -in), runs the FTTT localization for each, and streams the
// estimates. Output is a trace CSV with estimate columns, suitable for
// plotting or for feeding back through -in to re-track under different
// parameters.
//
// Usage:
//
//	fttt-track -n 20 -k 5 < positions.txt > tracked.csv
//	fttt-track -in trace.csv -variant ext -velocity
package main

import (
	"flag"
	"fmt"
	"os"

	"fttt/internal/core"
	"fttt/internal/deploy"
	"fttt/internal/geom"
	"fttt/internal/obs"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/stats"
	"fttt/internal/trace"
)

func main() {
	var (
		n         = flag.Int("n", 20, "number of sensor nodes")
		layout    = flag.String("deploy", "random", "deployment: random | grid | cross")
		k         = flag.Int("k", 5, "grouping sampling times")
		eps       = flag.Float64("eps", 1, "sensing resolution ε (dBm)")
		size      = flag.Float64("field", 100, "square field edge (m)")
		cell      = flag.Float64("cell", 1, "grid division cell size (m)")
		variant   = flag.String("variant", "basic", "sampling vectors: basic | ext")
		seed      = flag.Uint64("seed", 1, "root random seed")
		inPath    = flag.String("in", "", "input trace CSV (default: 't x y' lines on stdin)")
		velocity  = flag.Bool("velocity", false, "append velocity estimates to stderr summary")
		telemetry = flag.String("telemetry-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address during the run")
		tracePath = flag.String("trace", "", "write a JSONL trace recording of the run to this path")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	if *telemetry != "" {
		srv, err := obs.Serve(*telemetry, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fttt-track: telemetry:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics\n", srv.Addr())
	}
	if err := run(*n, *layout, *k, *eps, *size, *cell, *variant, *seed, *inPath, *velocity, *tracePath, reg); err != nil {
		fmt.Fprintln(os.Stderr, "fttt-track:", err)
		os.Exit(1)
	}
}

func run(n int, layout string, k int, eps, size, cell float64, variant string, seed uint64, inPath string, velocity bool, tracePath string, reg *obs.Registry) error {
	field := geom.NewRect(geom.Pt(0, 0), geom.Pt(size, size))
	root := randx.New(seed)

	var dep deploy.Deployment
	switch layout {
	case "random":
		dep = deploy.Random(field, n, root.Split("deploy"))
	case "grid":
		dep = deploy.Grid(field, n)
	case "cross":
		dep = deploy.Cross(field, n, size*0.3)
	default:
		return fmt.Errorf("unknown deployment %q", layout)
	}

	cfg := core.Config{
		Field: field, Nodes: dep.Positions(), Model: rf.Default(),
		Epsilon: eps, SamplingTimes: k, Range: 40, CellSize: cell,
		Obs: reg,
	}
	var rec *obs.Recorder
	if tracePath != "" {
		rec = obs.NewRecorder(0)
		cfg.Tracer = rec
	}
	switch variant {
	case "basic":
	case "ext":
		cfg.Variant = core.Extended
	default:
		return fmt.Errorf("unknown variant %q", variant)
	}
	tr, err := core.New(cfg)
	if err != nil {
		return err
	}

	in, err := readInput(inPath)
	if err != nil {
		return err
	}
	if len(in) == 0 {
		return fmt.Errorf("no input positions")
	}

	rng := root.Split("track")
	out := make(trace.Trace, len(in))
	for i, p := range in {
		est := tr.Localize(p.True, rng.SplitN("loc", i))
		e := est.Pos
		out[i] = trace.Point{T: p.T, True: p.True, Est: &e}
	}
	if err := out.WriteCSV(os.Stdout); err != nil {
		return err
	}
	if rec != nil {
		if err := writeTrace(tracePath, rec); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "trace: %d records written to %s (%d dropped by the ring)\n",
			len(rec.Records()), tracePath, rec.Dropped())
	}

	s := stats.Summarize(out.Errors())
	fmt.Fprintf(os.Stderr, "tracked %d points: mean=%.2fm stddev=%.2fm max=%.2fm p95-localize=%.3fms\n",
		s.N, s.Mean, s.StdDev, s.Max,
		reg.Histogram("fttt_core_localize_seconds", nil).Quantile(0.95)*1e3)
	if velocity && len(out) >= 5 {
		vs := out.EstimateVelocities(2)
		speeds := make([]float64, len(vs))
		for i, v := range vs {
			speeds[i] = v.Speed
		}
		fmt.Fprintf(os.Stderr, "estimated speed: mean=%.2f m/s median=%.2f m/s\n",
			stats.Mean(speeds), stats.Median(speeds))
	}
	return nil
}

// writeTrace dumps the recorder's surviving records as JSONL.
func writeTrace(path string, rec *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteJSONL(f, rec.Records()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readInput parses a trace CSV (when path set) or "t x y" lines from
// stdin. Lines starting with '#' are skipped.
func readInput(path string) (trace.Trace, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadCSV(f)
	}
	return trace.ParseXYLines(os.Stdin)
}
