// Command fttt-bench regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §4 for the experiment index) and
// prints the same rows/series the paper reports. Absolute numbers come
// from the simulated substrate, so compare shapes, not digits; the
// expected shapes are listed in EXPERIMENTS.md.
//
// Usage:
//
//	fttt-bench                 # everything at default scale (minutes)
//	fttt-bench -quick          # reduced scale smoke run (seconds)
//	fttt-bench -only fig11bc   # one experiment
//	fttt-bench -csv out/       # also write CSV series
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fttt/internal/experiments"
	"fttt/internal/fsx"
	"fttt/internal/geom"
	"fttt/internal/obs"
	"fttt/internal/svg"
)

func main() {
	var (
		quick     = flag.Bool("quick", false, "reduced-scale smoke run")
		trials    = flag.Int("trials", 0, "override trials per sweep point")
		dur       = flag.Float64("duration", 0, "override tracking duration (s)")
		seed      = flag.Uint64("seed", 1, "root random seed")
		only      = flag.String("only", "", "comma-separated experiment list (fig10,fig11a,fig11bc,fig12a,fig12b,fig12cd,fig13,sampling,scaling,matchcost,ablation,gridres,methods,smoothing,lifetime,syncacc,estimator,doi,dutycycle,faces,coverage,mac,mobility,faulttol,byzantine)")
		csvDir    = flag.String("csv", "", "directory to write CSV series into")
		svgDir    = flag.String("svg", "", "directory to render Fig. 10/13 track SVGs into")
		telemetry = flag.String("telemetry-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while the suite runs")
	)
	flag.Parse()

	p := experiments.Default()
	if *quick {
		p = experiments.Quick()
	}
	if *trials > 0 {
		p.Trials = *trials
	}
	if *dur > 0 {
		p.Duration = *dur
	}
	p.Seed = *seed
	reg := obs.NewRegistry()
	p.Obs = reg
	if *telemetry != "" {
		srv, err := obs.Serve(*telemetry, reg)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: http://%s/metrics\n", srv.Addr())
	}

	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}
	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fatal(err)
		}
	}

	printTable1(p)
	r := &runner{p: p, csvDir: *csvDir, svgDir: *svgDir}
	experimentsList := []struct {
		name string
		fn   func()
	}{
		{"fig10", r.fig10},
		{"fig11a", r.fig11a},
		{"fig11bc", r.fig11bc},
		{"fig12a", r.fig12a},
		{"fig12b", r.fig12b},
		{"fig12cd", r.fig12cd},
		{"fig13", r.fig13},
		{"sampling", r.samplingTimes},
		{"scaling", r.errorScaling},
		{"matchcost", r.matchCost},
		{"ablation", r.ablation},
		{"gridres", r.gridRes},
		{"methods", r.methods},
		{"smoothing", r.smoothing},
		{"lifetime", r.lifetime},
		{"syncacc", r.syncAccuracy},
		{"estimator", r.estimator},
		{"doi", r.doi},
		{"dutycycle", r.dutyCycle},
		{"faces", r.faces},
		{"coverage", r.coverage},
		{"mac", r.mac},
		{"mobility", r.mobility},
		{"faulttol", r.faultTolerance},
		{"byzantine", r.byzantine},
	}
	for _, e := range experimentsList {
		if !sel(e.name) {
			continue
		}
		// One figure per registry epoch: reset keeps the handles valid
		// but isolates each dump to its own experiment.
		reg.Reset()
		e.fn()
		r.dumpMetrics(e.name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fttt-bench:", err)
	os.Exit(1)
}

func printTable1(p experiments.Params) {
	fmt.Println("== Table 1: system parameters and settings ==")
	fmt.Printf("  field size                  %gx%g m²\n", p.Field.Width(), p.Field.Height())
	fmt.Printf("  noise model                 β=%g, σ_X=%g (fast fraction %g)\n",
		p.Model.Beta, p.Model.SigmaX, p.Model.FastFraction)
	fmt.Printf("  sensing range R             %g m\n", p.Range)
	fmt.Printf("  sensing resolution ε        %g dBm (swept 0.5–3 in fig12a)\n", p.Epsilon)
	fmt.Printf("  sampling rate λ             %g Hz\n", p.SampleRate)
	fmt.Printf("  target velocity             %g–%g m/s\n", p.VMin, p.VMax)
	fmt.Printf("  sampling times k            %d (swept 3–9 in fig12b)\n", p.K)
	fmt.Printf("  run duration / trials       %gs × %d\n", p.Duration, p.Trials)
	fmt.Println()
}

type runner struct {
	p      experiments.Params
	csvDir string
	svgDir string
}

// renderTrackSVG writes one Fig. 10/13-style panel when -svg is set.
func (r *runner) renderTrackSVG(name string, nodes []geom.Point, s experiments.TrackedSeries) {
	if r.svgDir == "" {
		return
	}
	f, err := fsx.Create(filepath.Join(r.svgDir, name))
	if err != nil {
		fatal(err)
	}
	err = svg.RenderTrack(f, r.p.Field, nodes, s.True, s.Estimates)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
}

func (r *runner) fig10() {
	res, err := experiments.Fig10(r.p)
	if err != nil {
		fatal(err)
	}
	fmt.Println("== Fig. 10: tracking example, estimated points (PM vs FTTT) ==")
	for _, s := range []experiments.TrackedSeries{res.GridPM, res.GridFTTT, res.RandomPM, res.RandomFTTT} {
		kind := "grid"
		if &s.True[0] == &res.RandomPM.True[0] || &s.True[0] == &res.RandomFTTT.True[0] {
			kind = "random"
		}
		fmt.Printf("  %-7s %-9v mean=%.2fm stddev=%.2fm max=%.2fm\n",
			kind, s.Method, s.Summary.Mean, s.Summary.StdDev, s.Summary.Max)
	}
	r.writeSeriesCSV("fig10_grid_pm.csv", res.GridPM)
	r.writeSeriesCSV("fig10_grid_fttt.csv", res.GridFTTT)
	r.writeSeriesCSV("fig10_random_pm.csv", res.RandomPM)
	r.writeSeriesCSV("fig10_random_fttt.csv", res.RandomFTTT)
	r.renderTrackSVG("fig10a_grid_pm.svg", res.GridNodes, res.GridPM)
	r.renderTrackSVG("fig10b_grid_fttt.svg", res.GridNodes, res.GridFTTT)
	r.renderTrackSVG("fig10c_random_pm.svg", res.RandomNodes, res.RandomPM)
	r.renderTrackSVG("fig10d_random_fttt.svg", res.RandomNodes, res.RandomFTTT)
	fmt.Println()
}

func (r *runner) fig11a() {
	res, err := experiments.Fig11a(r.p)
	if err != nil {
		fatal(err)
	}
	fmt.Println("== Fig. 11(a): dynamic tracking error over time (n=10, k=5, ε=1) ==")
	methods := []experiments.Method{experiments.FTTTBasic, experiments.PM, experiments.DirectMLE}
	fmt.Printf("  %-8s", "t(s)")
	for _, m := range methods {
		fmt.Printf("%12v", m)
	}
	fmt.Println()
	step := len(res.Times) / 12
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(res.Times); i += step {
		fmt.Printf("  %-8.1f", res.Times[i])
		for _, m := range methods {
			fmt.Printf("%12.2f", res.Series[m][i])
		}
		fmt.Println()
	}
	if r.csvDir != "" {
		var b strings.Builder
		b.WriteString("t,fttt,pm,directmle\n")
		for i := range res.Times {
			fmt.Fprintf(&b, "%.2f,%.3f,%.3f,%.3f\n", res.Times[i],
				res.Series[experiments.FTTTBasic][i],
				res.Series[experiments.PM][i],
				res.Series[experiments.DirectMLE][i])
		}
		r.writeFile("fig11a.csv", b.String())
	}
	fmt.Println()
}

func (r *runner) fig11bc() {
	rows, err := experiments.Fig11bc(r.p)
	if err != nil {
		fatal(err)
	}
	fmt.Println("== Fig. 11(b,c): mean error and stddev vs number of sensors (k=5, ε=1) ==")
	methods := []experiments.Method{experiments.FTTTBasic, experiments.PM, experiments.DirectMLE}
	fmt.Printf("  %-5s", "n")
	for _, m := range methods {
		fmt.Printf("%11v-mean", m)
	}
	for _, m := range methods {
		fmt.Printf("%13v-sd", m)
	}
	fmt.Println()
	var b strings.Builder
	b.WriteString("n,fttt_mean,pm_mean,mle_mean,fttt_sd,pm_sd,mle_sd\n")
	for _, row := range rows {
		fmt.Printf("  %-5d", row.N)
		for _, m := range methods {
			fmt.Printf("%16.2f", row.Mean[m])
		}
		for _, m := range methods {
			fmt.Printf("%15.2f", row.StdDev[m])
		}
		fmt.Println()
		fmt.Fprintf(&b, "%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n", row.N,
			row.Mean[experiments.FTTTBasic], row.Mean[experiments.PM], row.Mean[experiments.DirectMLE],
			row.StdDev[experiments.FTTTBasic], row.StdDev[experiments.PM], row.StdDev[experiments.DirectMLE])
	}
	r.writeFile("fig11bc.csv", b.String())
	fmt.Println()
}

func (r *runner) fig12a() {
	rows, err := experiments.Fig12a(r.p)
	if err != nil {
		fatal(err)
	}
	fmt.Println("== Fig. 12(a): FTTT mean error vs sensing resolution ε (k=5) ==")
	ns := []int{10, 15, 20, 25}
	fmt.Printf("  %-6s", "ε")
	for _, n := range ns {
		fmt.Printf("      n=%-5d", n)
	}
	fmt.Println()
	var b strings.Builder
	b.WriteString("epsilon,n10,n15,n20,n25\n")
	for _, row := range rows {
		fmt.Printf("  %-6.1f", row.Epsilon)
		for _, n := range ns {
			fmt.Printf("%12.2f", row.MeanErr[n])
		}
		fmt.Println()
		fmt.Fprintf(&b, "%.1f,%.3f,%.3f,%.3f,%.3f\n", row.Epsilon,
			row.MeanErr[10], row.MeanErr[15], row.MeanErr[20], row.MeanErr[25])
	}
	r.writeFile("fig12a.csv", b.String())
	fmt.Println()
}

func (r *runner) fig12b() {
	rows, err := experiments.Fig12b(r.p)
	if err != nil {
		fatal(err)
	}
	fmt.Println("== Fig. 12(b): FTTT mean error vs n under sampling times k (ε=1) ==")
	ks := []int{3, 5, 7, 9}
	fmt.Printf("  %-5s", "n")
	for _, k := range ks {
		fmt.Printf("      k=%-4d", k)
	}
	fmt.Println()
	var b strings.Builder
	b.WriteString("n,k3,k5,k7,k9\n")
	for _, row := range rows {
		fmt.Printf("  %-5d", row.N)
		for _, k := range ks {
			fmt.Printf("%11.2f", row.MeanErr[k])
		}
		fmt.Println()
		fmt.Fprintf(&b, "%d,%.3f,%.3f,%.3f,%.3f\n", row.N,
			row.MeanErr[3], row.MeanErr[5], row.MeanErr[7], row.MeanErr[9])
	}
	r.writeFile("fig12b.csv", b.String())
	fmt.Println()
}

func (r *runner) fig12cd() {
	rows, err := experiments.Fig12cd(r.p)
	if err != nil {
		fatal(err)
	}
	fmt.Println("== Fig. 12(c,d): basic vs extended FTTT, mean and stddev (k=5, ε=1) ==")
	fmt.Printf("  %-5s%14s%14s%14s%14s\n", "n", "basic-mean", "ext-mean", "basic-sd", "ext-sd")
	var b strings.Builder
	b.WriteString("n,basic_mean,ext_mean,basic_sd,ext_sd\n")
	for _, row := range rows {
		fmt.Printf("  %-5d%14.2f%14.2f%14.2f%14.2f\n", row.N,
			row.Mean[experiments.FTTTBasic], row.Mean[experiments.FTTTExtended],
			row.StdDev[experiments.FTTTBasic], row.StdDev[experiments.FTTTExtended])
		fmt.Fprintf(&b, "%d,%.3f,%.3f,%.3f,%.3f\n", row.N,
			row.Mean[experiments.FTTTBasic], row.Mean[experiments.FTTTExtended],
			row.StdDev[experiments.FTTTBasic], row.StdDev[experiments.FTTTExtended])
	}
	r.writeFile("fig12cd.csv", b.String())
	fmt.Println()
}

func (r *runner) fig13() {
	res, err := experiments.Fig13(r.p)
	if err != nil {
		fatal(err)
	}
	fmt.Println("== Fig. 13: outdoor system evaluation (9-node cross, ⊔ trace, WSN substrate) ==")
	fmt.Printf("  rounds=%d heard=%d delivered=%d (%.1f%%) mean-hops=%.2f energy=%.2fmJ\n",
		res.RoundsRun, res.ReportsHeard, res.ReportsArrived,
		100*float64(res.ReportsArrived)/float64(max(res.ReportsHeard, 1)),
		res.MeanHops, res.EnergySpent*1e3)
	fmt.Printf("  basic FTTT:    mean=%.2fm stddev=%.2fm max=%.2fm\n",
		res.Basic.Summary.Mean, res.Basic.Summary.StdDev, res.Basic.Summary.Max)
	fmt.Printf("  extended FTTT: mean=%.2fm stddev=%.2fm max=%.2fm\n",
		res.Extended.Summary.Mean, res.Extended.Summary.StdDev, res.Extended.Summary.Max)
	r.writeSeriesCSV("fig13_basic.csv", res.Basic)
	r.writeSeriesCSV("fig13_extended.csv", res.Extended)
	r.renderTrackSVG("fig13c_basic.svg", res.Nodes, res.Basic)
	r.renderTrackSVG("fig13d_extended.svg", res.Nodes, res.Extended)
	fmt.Println()
}

func (r *runner) samplingTimes() {
	rows, k99 := experiments.SamplingTimes(r.p, 6, []int{2, 3, 4, 5, 6, 8, 10, 12}, 50000)
	fmt.Println("== Sec. 5.1: flip-capture probability, theory vs Monte Carlo (N=6 pairs) ==")
	fmt.Printf("  %-5s%12s%12s\n", "k", "theory", "empirical")
	var b strings.Builder
	b.WriteString("k,theory,empirical\n")
	for _, row := range rows {
		fmt.Printf("  %-5d%12.4f%12.4f\n", row.K, row.Theory, row.Empirical)
		fmt.Fprintf(&b, "%d,%.5f,%.5f\n", row.K, row.Theory, row.Empirical)
	}
	fmt.Printf("  k for λ=0.99 with N=C(20,2)=190 pairs: %d (paper: 16)\n", k99At190(r.p))
	_ = k99
	r.writeFile("sampling_times.csv", b.String())
	fmt.Println()
}

func k99At190(p experiments.Params) int {
	_, k := experiments.SamplingTimes(p, 190, []int{2}, 1)
	return k
}

func (r *runner) errorScaling() {
	rows, err := experiments.ErrorScaling(r.p, []int{3, 5, 7, 9}, []int{15, 25, 35})
	if err != nil {
		fatal(err)
	}
	fmt.Println("== Sec. 5.2: error scaling vs k and n, with eq. 10 envelope ==")
	fmt.Printf("  %-5s%-5s%12s%14s\n", "k", "n", "mean-err", "envelope")
	var b strings.Builder
	b.WriteString("k,n,mean,envelope\n")
	for _, row := range rows {
		fmt.Printf("  %-5d%-5d%12.2f%14.4f\n", row.K, row.N, row.MeanErr, row.Envelope)
		fmt.Fprintf(&b, "%d,%d,%.3f,%.5f\n", row.K, row.N, row.MeanErr, row.Envelope)
	}
	r.writeFile("error_scaling.csv", b.String())
	fmt.Println()
}

func (r *runner) matchCost() {
	rows, err := experiments.MatchCost(r.p, []int{9, 16, 25, 36}, 100)
	if err != nil {
		fatal(err)
	}
	fmt.Println("== Sec. 4.4(2): matcher cost, exhaustive vs heuristic neighbor links ==")
	fmt.Printf("  %-5s%8s%8s%14s%14s%12s\n", "n", "faces", "links", "exhaustive", "heuristic", "extra-err")
	var b strings.Builder
	b.WriteString("n,faces,links,exhaustive_per,heuristic_per,extra_err\n")
	for _, row := range rows {
		fmt.Printf("  %-5d%8d%8d%14.1f%14.1f%12.2f\n",
			row.N, row.Faces, row.Links, row.ExhaustivePer, row.HeuristicPer, row.HeuristicError)
		fmt.Fprintf(&b, "%d,%d,%d,%.2f,%.2f,%.3f\n",
			row.N, row.Faces, row.Links, row.ExhaustivePer, row.HeuristicPer, row.HeuristicError)
	}
	r.writeFile("match_cost.csv", b.String())
	fmt.Println()
}

func (r *runner) ablation() {
	rows, err := experiments.BoundaryAblation(r.p, []int{15, 25})
	if err != nil {
		fatal(err)
	}
	fmt.Println("== DESIGN.md §5 ablation: boundary constant choice ==")
	fmt.Printf("  %-5s%12s%14s%12s\n", "n", "eq3-C", "calibrated", "certain")
	var b strings.Builder
	b.WriteString("n,eq3,calibrated,certain\n")
	for _, row := range rows {
		fmt.Printf("  %-5d%12.2f%14.2f%12.2f\n", row.N, row.MeanEq3, row.MeanCalibrated, row.MeanCertain)
		fmt.Fprintf(&b, "%d,%.3f,%.3f,%.3f\n", row.N, row.MeanEq3, row.MeanCalibrated, row.MeanCertain)
	}
	r.writeFile("boundary_ablation.csv", b.String())
	fmt.Println()
}

func (r *runner) gridRes() {
	rows, err := experiments.GridResolution(r.p, 15, []float64{0.5, 1, 2, 4, 8})
	if err != nil {
		fatal(err)
	}
	fmt.Println("== DESIGN.md §5 ablation: approximate grid division resolution ==")
	fmt.Printf("  %-8s%8s%12s\n", "cell(m)", "faces", "mean-err")
	var b strings.Builder
	b.WriteString("cell,faces,mean\n")
	for _, row := range rows {
		fmt.Printf("  %-8.1f%8d%12.2f\n", row.CellSize, row.Faces, row.MeanErr)
		fmt.Fprintf(&b, "%.1f,%d,%.3f\n", row.CellSize, row.Faces, row.MeanErr)
	}
	r.writeFile("grid_resolution.csv", b.String())
	fmt.Println()
}

func (r *runner) methods() {
	rows, err := experiments.MethodComparison(r.p, []int{10, 20, 30})
	if err != nil {
		fatal(err)
	}
	fmt.Println("== Extension: all-methods comparison on shared samples ==")
	fmt.Printf("  %-5s", "n")
	for _, m := range experiments.AllMethods() {
		fmt.Printf("%10v", m)
	}
	fmt.Println()
	var b strings.Builder
	b.WriteString("n")
	for _, m := range experiments.AllMethods() {
		fmt.Fprintf(&b, ",%v", m)
	}
	b.WriteString("\n")
	for _, row := range rows {
		fmt.Printf("  %-5d", row.N)
		fmt.Fprintf(&b, "%d", row.N)
		for _, m := range experiments.AllMethods() {
			fmt.Printf("%10.2f", row.Mean[m])
			fmt.Fprintf(&b, ",%.3f", row.Mean[m])
		}
		fmt.Println()
		b.WriteString("\n")
	}
	r.writeFile("method_comparison.csv", b.String())
	fmt.Println()
}

func (r *runner) smoothing() {
	rows, err := experiments.Smoothing(r.p, []int{10, 20, 30})
	if err != nil {
		fatal(err)
	}
	fmt.Println("== Extension: smoothing pipelines (mean / stddev) ==")
	fmt.Printf("  %-5s%18s%18s%18s%18s\n", "n", "basic", "extended", "FTTT+Kalman", "FTTT+particle")
	var b strings.Builder
	b.WriteString("n,basic_mean,basic_sd,ext_mean,ext_sd,kf_mean,kf_sd,pf_mean,pf_sd\n")
	for _, row := range rows {
		fmt.Printf("  %-5d%10.2f/%6.2f%11.2f/%6.2f%11.2f/%6.2f%11.2f/%6.2f\n", row.N,
			row.Basic.Mean, row.Basic.StdDev,
			row.Extended.Mean, row.Extended.StdDev,
			row.Kalman.Mean, row.Kalman.StdDev,
			row.Particle.Mean, row.Particle.StdDev)
		fmt.Fprintf(&b, "%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n", row.N,
			row.Basic.Mean, row.Basic.StdDev,
			row.Extended.Mean, row.Extended.StdDev,
			row.Kalman.Mean, row.Kalman.StdDev,
			row.Particle.Mean, row.Particle.StdDev)
	}
	r.writeFile("smoothing.csv", b.String())
	fmt.Println()
}

func (r *runner) lifetime() {
	rows, err := experiments.NetworkLifetime(r.p, 25, 5, 20000, 2e-3)
	if err != nil {
		fatal(err)
	}
	fmt.Println("== Extension: network lifetime, flat greedy vs clustered aggregation ==")
	fmt.Printf("  %-14s%16s%18s%18s%14s\n", "topology", "rounds→1st", "rounds→25%dead", "energy/round", "delivered")
	var b strings.Builder
	b.WriteString("topology,rounds_first,rounds_quarter,energy_per_round,delivered_frac\n")
	for _, row := range rows {
		fmt.Printf("  %-14s%16d%18d%16.2eJ%13.1f%%\n",
			row.Topology, row.RoundsToFirst, row.RoundsToQuarter,
			row.EnergyPerRound, 100*row.DeliveredFrac)
		fmt.Fprintf(&b, "%s,%d,%d,%.4e,%.4f\n",
			row.Topology, row.RoundsToFirst, row.RoundsToQuarter,
			row.EnergyPerRound, row.DeliveredFrac)
	}
	r.writeFile("lifetime.csv", b.String())
	fmt.Println()
}

func (r *runner) syncAccuracy() {
	rows, err := experiments.SyncAccuracy(r.p, []float64{10, 30, 60, 120, 300})
	if err != nil {
		fatal(err)
	}
	fmt.Println("== Extension: clock sync residuals vs beacon period ==")
	fmt.Printf("  %-12s%14s%18s\n", "period(s)", "max offset", "max pos error")
	var b strings.Builder
	b.WriteString("period,max_offset,max_pos_error\n")
	for _, row := range rows {
		fmt.Printf("  %-12.0f%12.2fms%16.3fm\n",
			row.SyncPeriod, row.MaxOffset*1e3, row.MaxPosError)
		fmt.Fprintf(&b, "%.0f,%.6f,%.4f\n", row.SyncPeriod, row.MaxOffset, row.MaxPosError)
	}
	r.writeFile("sync_accuracy.csv", b.String())
	fmt.Println()
}

func (r *runner) estimator() {
	rows, err := experiments.EstimatorAblation(r.p, 20, []int{1, 3, 5, 10, 20})
	if err != nil {
		fatal(err)
	}
	fmt.Println("== DESIGN.md §5 ablation: argmax vs similarity-weighted top-M estimator ==")
	fmt.Printf("  %-5s%12s%12s\n", "M", "mean-err", "stddev")
	var b strings.Builder
	b.WriteString("m,mean,sd\n")
	for _, row := range rows {
		fmt.Printf("  %-5d%12.2f%12.2f\n", row.M, row.MeanErr, row.StdDev)
		fmt.Fprintf(&b, "%d,%.3f,%.3f\n", row.M, row.MeanErr, row.StdDev)
	}
	r.writeFile("estimator_ablation.csv", b.String())
	fmt.Println()
}

func (r *runner) doi() {
	rows, err := experiments.IrregularityRobustness(r.p, 20, []float64{0, 0.01, 0.02, 0.05, 0.1})
	if err != nil {
		fatal(err)
	}
	fmt.Println("== Extension: sensing-irregularity (DOI) robustness ==")
	fmt.Printf("  %-8s%12s%14s\n", "DOI", "FTTT", "DirectMLE")
	var b strings.Builder
	b.WriteString("doi,fttt,mle\n")
	for _, row := range rows {
		fmt.Printf("  %-8.3f%12.2f%14.2f\n", row.DOI, row.FTTTMean, row.MLEMean)
		fmt.Fprintf(&b, "%.3f,%.3f,%.3f\n", row.DOI, row.FTTTMean, row.MLEMean)
	}
	r.writeFile("doi_robustness.csv", b.String())
	fmt.Println()
}

func (r *runner) dutyCycle() {
	rows, err := experiments.DutyCycling(r.p, 25, []float64{30, 45, 60, 80})
	if err != nil {
		fatal(err)
	}
	fmt.Println("== Extension: duty cycling (tracking-driven wake-up) ==")
	fmt.Printf("  %-12s%12s%14s%12s\n", "wake radius", "mean-err", "energy", "awake")
	var b strings.Builder
	b.WriteString("radius,mean,energy,awake_frac\n")
	for _, row := range rows {
		label := fmt.Sprintf("%.0f m", row.WakeRadius)
		if row.WakeRadius == 0 {
			label = "always-on"
		}
		fmt.Printf("  %-12s%12.2f%12.2emJ%11.1f%%\n",
			label, row.MeanErr, row.EnergyTotal*1e3, 100*row.AwakeFrac)
		fmt.Fprintf(&b, "%.0f,%.3f,%.5e,%.4f\n",
			row.WakeRadius, row.MeanErr, row.EnergyTotal, row.AwakeFrac)
	}
	r.writeFile("duty_cycle.csv", b.String())
	fmt.Println()
}

func (r *runner) faces() {
	rows, err := experiments.FaceComplexity(r.p, []int{4, 6, 8, 10, 12})
	if err != nil {
		fatal(err)
	}
	fmt.Println("== Sec. 4.4: exact arrangement faces vs grid division vs O(n⁴) ==")
	fmt.Printf("  %-5s%14s%12s%16s%12s\n", "n", "exact-faces", "grid-faces", "intersections", "n⁴")
	var b strings.Builder
	b.WriteString("n,exact,grid,intersections,n4\n")
	for _, row := range rows {
		fmt.Printf("  %-5d%14d%12d%16d%12d\n",
			row.N, row.ExactFaces, row.GridFaces, row.Intersections, row.N4)
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d\n",
			row.N, row.ExactFaces, row.GridFaces, row.Intersections, row.N4)
	}
	r.writeFile("face_complexity.csv", b.String())
	fmt.Println()
}

func (r *runner) coverage() {
	rows, err := experiments.CoverageVsError(r.p, []int{5, 10, 15, 20, 25, 30})
	if err != nil {
		fatal(err)
	}
	fmt.Println("== Extension: sensing coverage vs tracking error (the Fig. 11(b) knee) ==")
	fmt.Printf("  %-5s%12s%12s%12s%12s\n", "n", "≥1-cover", "≥3-cover", "mean-deg", "mean-err")
	var b strings.Builder
	b.WriteString("n,cov1,cov3,degree,mean\n")
	for _, row := range rows {
		fmt.Printf("  %-5d%11.1f%%%11.1f%%%12.2f%12.2f\n",
			row.N, 100*row.Coverage1, 100*row.Coverage3, row.MeanDegree, row.MeanErr)
		fmt.Fprintf(&b, "%d,%.4f,%.4f,%.3f,%.3f\n",
			row.N, row.Coverage1, row.Coverage3, row.MeanDegree, row.MeanErr)
	}
	r.writeFile("coverage.csv", b.String())
	fmt.Println()
}

func (r *runner) mac() {
	rows, err := experiments.MACContention(r.p, 25, 5, 40, []int{0, 2, 4, 8, 16, 32})
	if err != nil {
		fatal(err)
	}
	fmt.Println("== Extension: slotted-MAC contention, flat vs clustered TDMA delivery ==")
	fmt.Printf("  %-8s%14s%16s\n", "slots", "flat", "clustered")
	var b strings.Builder
	b.WriteString("slots,flat,clustered\n")
	for _, row := range rows {
		label := fmt.Sprintf("%d", row.Slots)
		if row.Slots == 0 {
			label = "ideal"
		}
		fmt.Printf("  %-8s%13.1f%%%15.1f%%\n",
			label, 100*row.FlatDelivered, 100*row.ClusteredDelivered)
		fmt.Fprintf(&b, "%d,%.4f,%.4f\n", row.Slots, row.FlatDelivered, row.ClusteredDelivered)
	}
	r.writeFile("mac_contention.csv", b.String())
	fmt.Println()
}

func (r *runner) mobility() {
	rows, err := experiments.MobilityRobustness(r.p, 20)
	if err != nil {
		fatal(err)
	}
	fmt.Println("== Extension: mobility-model robustness (n=20) ==")
	fmt.Printf("  %-18s%12s%12s\n", "model", "FTTT", "PM")
	var b strings.Builder
	b.WriteString("model,fttt,pm\n")
	for _, row := range rows {
		fmt.Printf("  %-18s%12.2f%12.2f\n", row.Model, row.FTTTMean, row.PMMean)
		fmt.Fprintf(&b, "%s,%.3f,%.3f\n", row.Model, row.FTTTMean, row.PMMean)
	}
	r.writeFile("mobility_robustness.csv", b.String())
	fmt.Println()
}

func (r *runner) faultTolerance() {
	rows, err := experiments.FaultTolerance(r.p, 25, []float64{0, 0.1, 0.2, 0.3})
	if err != nil {
		fatal(err)
	}
	fmt.Println("== DESIGN.md §9: fault tolerance, crash fraction vs tracking error ==")
	fmt.Printf("  %-8s%12s%12s%12s%12s%12s%14s\n",
		"crash", "mean-err", "p90-err", "delivered", "degraded", "retried", "extrapolated")
	var b strings.Builder
	b.WriteString("crash_frac,mean,p90,delivered_frac,degraded_frac,retried_frac,extrapolated_frac\n")
	for _, row := range rows {
		fmt.Printf("  %-8.0f%12.2f%12.2f%11.1f%%%11.1f%%%11.1f%%%13.1f%%\n",
			100*row.CrashFrac, row.MeanErr, row.P90Err, 100*row.DeliveredFrac,
			100*row.DegradedFrac, 100*row.RetriedFrac, 100*row.ExtrapolatedFrac)
		fmt.Fprintf(&b, "%.2f,%.3f,%.3f,%.4f,%.4f,%.4f,%.4f\n",
			row.CrashFrac, row.MeanErr, row.P90Err, row.DeliveredFrac,
			row.DegradedFrac, row.RetriedFrac, row.ExtrapolatedFrac)
	}
	r.writeFile("fault_tolerance.csv", b.String())
	fmt.Println()
}

func (r *runner) byzantine() {
	rows, err := experiments.Byzantine(r.p, 16, []float64{0, 0.1, 0.2, 0.3, 0.4})
	if err != nil {
		fatal(err)
	}
	fmt.Println("== DESIGN.md §15: Byzantine collusion, malicious fraction vs tracking error ==")
	fmt.Printf("  %-10s%10s%12s%12s%12s%12s%10s%10s%10s%10s\n",
		"malicious", "colluders", "def-mean", "van-mean", "def-steady", "van-steady",
		"pm", "mle", "suspects", "truepos")
	var b strings.Builder
	b.WriteString("malicious_frac,colluders,defended_mean,defended_p90,vanilla_mean,vanilla_p90," +
		"defended_steady_mean,vanilla_steady_mean,pm_mean,mle_mean,suspects_mean,suspects_truepos\n")
	for _, row := range rows {
		fmt.Printf("  %-9.0f%%%10d%12.2f%12.2f%12.2f%12.2f%10.2f%10.2f%10.1f%10.2f\n",
			100*row.MaliciousFrac, row.Colluders, row.DefendedMean, row.VanillaMean,
			row.DefendedSteadyMean, row.VanillaSteadyMean,
			row.PMMean, row.DirectMLEMean, row.SuspectsMean, row.SuspectsTruePos)
		fmt.Fprintf(&b, "%.2f,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.2f,%.3f\n",
			row.MaliciousFrac, row.Colluders, row.DefendedMean, row.DefendedP90,
			row.VanillaMean, row.VanillaP90, row.DefendedSteadyMean, row.VanillaSteadyMean,
			row.PMMean, row.DirectMLEMean, row.SuspectsMean, row.SuspectsTruePos)
	}
	r.writeFile("byzantine.csv", b.String())
	if r.svgDir != "" || r.csvDir != "" {
		res, err := experiments.ByzantineExample(r.p, 16, 0.2)
		if err != nil {
			fatal(err)
		}
		r.renderTrackSVG("byzantine_defended.svg", res.Nodes, res.Defended)
		r.renderTrackSVG("byzantine_vanilla.svg", res.Nodes, res.Vanilla)
		r.writeSeriesCSV("byzantine_defended_track.csv", res.Defended)
		r.writeSeriesCSV("byzantine_vanilla_track.csv", res.Vanilla)
	}
	fmt.Println()
}

func (r *runner) writeSeriesCSV(name string, s experiments.TrackedSeries) {
	if r.csvDir == "" {
		return
	}
	var b strings.Builder
	b.WriteString("t,true_x,true_y,est_x,est_y,err\n")
	for i := range s.Times {
		fmt.Fprintf(&b, "%.2f,%.3f,%.3f,%.3f,%.3f,%.3f\n",
			s.Times[i], s.True[i].X, s.True[i].Y, s.Estimates[i].X, s.Estimates[i].Y, s.Errors[i])
	}
	r.writeFile(name, b.String())
}

// dumpMetrics writes the telemetry accumulated by the experiment that
// just ran as Prometheus text next to its CSVs.
func (r *runner) dumpMetrics(name string) {
	if r.csvDir == "" || r.p.Obs == nil {
		return
	}
	var b strings.Builder
	if _, err := r.p.Obs.Snapshot().WriteTo(&b); err != nil {
		fatal(err)
	}
	r.writeFile(name+"_metrics.prom", b.String())
}

func (r *runner) writeFile(name, content string) {
	if r.csvDir == "" {
		return
	}
	path := filepath.Join(r.csvDir, name)
	if err := fsx.WriteFile(path, []byte(content), 0o644); err != nil {
		fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
