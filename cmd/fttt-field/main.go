// Command fttt-field inspects the monitor-area division: how many faces
// the uncertain boundaries carve, the signature dimension, the neighbor
// link count, and an ASCII rendering of the face map.
//
// Usage:
//
//	fttt-field -n 4 -deploy grid -eps 1 -cell 2 -map
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"fttt/internal/arrangement"
	"fttt/internal/deploy"
	"fttt/internal/field"
	"fttt/internal/fsx"
	"fttt/internal/geom"
	"fttt/internal/randx"
	"fttt/internal/rf"
	"fttt/internal/svg"
	"fttt/internal/vector"
)

func main() {
	var (
		n       = flag.Int("n", 4, "number of sensor nodes")
		layout  = flag.String("deploy", "grid", "deployment: random | grid | cross")
		eps     = flag.Float64("eps", 1, "sensing resolution ε (dBm)")
		sigma   = flag.Float64("sigma", 6, "noise σ_X (dB)")
		beta    = flag.Float64("beta", 4, "path-loss exponent β")
		size    = flag.Float64("field", 100, "square field edge (m)")
		cell    = flag.Float64("cell", 2, "grid division cell size (m)")
		cval    = flag.Float64("C", 0, "override uncertainty constant C (0 = eq. 3)")
		seed    = flag.Uint64("seed", 1, "seed for random deployment")
		drawMap = flag.Bool("map", false, "print an ASCII face map")
		top     = flag.Int("top", 10, "list the largest N faces")
		save    = flag.String("save", "", "persist the computed division to this file (gob)")
		load    = flag.String("load", "", "load a persisted division instead of computing one")
		svgOut  = flag.String("svg", "", "render the division (faces, sensors, boundary circles) to this SVG file")
	)
	flag.Parse()

	if err := run(*n, *layout, *eps, *sigma, *beta, *size, *cell, *cval, *seed, *drawMap, *top, *save, *load, *svgOut); err != nil {
		fmt.Fprintln(os.Stderr, "fttt-field:", err)
		os.Exit(1)
	}
}

func run(n int, layout string, eps, sigma, beta, size, cell, cval float64, seed uint64, drawMap bool, top int, save, load, svgOut string) error {
	fieldRect := geom.NewRect(geom.Pt(0, 0), geom.Pt(size, size))
	model := rf.Default()
	model.SigmaX = sigma
	model.Beta = beta
	if err := model.Validate(); err != nil {
		return err
	}

	var dep deploy.Deployment
	switch layout {
	case "random":
		dep = deploy.Random(fieldRect, n, randx.New(seed))
	case "grid":
		dep = deploy.Grid(fieldRect, n)
	case "cross":
		dep = deploy.Cross(fieldRect, n, size*0.3)
	default:
		return fmt.Errorf("unknown deployment %q", layout)
	}

	c := cval
	if c == 0 {
		c = model.UncertaintyC(eps)
	}
	var div *field.Division
	if load != "" {
		f, err := os.Open(load)
		if err != nil {
			return err
		}
		div, err = field.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("loaded division from %s\n", load)
	} else {
		rc, err := field.NewRatioClassifier(dep.Positions(), c)
		if err != nil {
			return err
		}
		div, err = field.Divide(fieldRect, rc, cell)
		if err != nil {
			return err
		}
	}
	if save != "" {
		f, err := fsx.Create(save)
		if err != nil {
			return err
		}
		err = div.Save(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("saved division to %s\n", save)
	}

	fmt.Printf("nodes=%d pairs=%d C=%.4f cell=%.1fm grid=%dx%d\n",
		n, vector.NumPairs(n), c, div.CellSize, div.Cols, div.Rows)
	fmt.Printf("faces=%d links=%d mean-face-area=%.1fm² uncertain-fraction=%.1f%%\n",
		div.NumFaces(), div.NeighborLinkCount(), div.MeanFaceArea(), 100*div.UncertainFraction())

	// Largest faces.
	idx := make([]int, len(div.Faces))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return div.Faces[idx[a]].Cells > div.Faces[idx[b]].Cells })
	if top > len(idx) {
		top = len(idx)
	}
	fmt.Printf("largest %d faces:\n", top)
	for _, fi := range idx[:top] {
		f := &div.Faces[fi]
		fmt.Printf("  face %4d: %4d cells, centroid %v, %d neighbors, flipped-components=%d\n",
			f.ID, f.Cells, f.Centroid, len(f.Neighbors), f.Signature.CountFlipped())
	}

	if drawMap {
		printMap(div, dep)
	}
	if svgOut != "" {
		circles, err := arrangement.BoundaryCircles(dep.Positions(), c)
		if err != nil {
			circles = nil // C=1: no boundary circles to draw
		}
		f, err := fsx.Create(svgOut)
		if err != nil {
			return err
		}
		err = svg.RenderDivision(f, div, dep.Positions(), circles, 1)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("rendered division to %s\n", svgOut)
	}
	return nil
}

// printMap renders the face raster: each face gets a letter (cycled);
// sensor positions print as '#'.
func printMap(div *field.Division, dep deploy.Deployment) {
	const glyphs = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	// Downsample to at most 64 columns for terminal friendliness.
	step := 1
	for div.Cols/step > 64 {
		step++
	}
	sensors := make(map[[2]int]bool)
	for _, nd := range dep.Nodes {
		c, r := div.CellOf(nd.Pos)
		sensors[[2]int{c / step, r / step}] = true
	}
	for r := div.Rows - 1; r >= 0; r -= step {
		line := make([]byte, 0, div.Cols/step+1)
		for c := 0; c < div.Cols; c += step {
			if sensors[[2]int{c / step, r / step}] {
				line = append(line, '#')
				continue
			}
			f := div.FaceAt(div.CellCenter(c, r))
			line = append(line, glyphs[f.ID%len(glyphs)])
		}
		fmt.Println(string(line))
	}
}
