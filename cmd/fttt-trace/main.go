// Command fttt-trace inspects and converts trace recordings — the JSONL
// files written by fttt-sim/fttt-track -trace and by
// GET /v1/sessions/{id}/debug/trace?format=jsonl.
//
// Usage:
//
//	fttt-trace show run.jsonl            # pretty-print the span trees
//	fttt-trace chrome run.jsonl -o run.trace.json
//	curl -s .../debug/trace?format=jsonl | fttt-trace show -
//
// The chrome subcommand emits the Chrome trace-event format, loadable in
// https://ui.perfetto.dev or chrome://tracing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"fttt/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch cmd := os.Args[1]; cmd {
	case "show":
		err = runShow(os.Args[2:])
	case "chrome":
		err = runChrome(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "fttt-trace: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fttt-trace:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage:
  fttt-trace show <recording.jsonl>              pretty-print span trees
  fttt-trace chrome <recording.jsonl> [-o path]  convert to Chrome trace-event JSON

Pass "-" to read the recording from stdin.
`)
}

// readRecords loads a JSONL recording from path ("-" = stdin).
func readRecords(path string) ([]obs.Record, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return obs.ReadJSONL(r)
}

func runChrome(args []string) error {
	fs := flag.NewFlagSet("chrome", flag.ExitOnError)
	out := fs.String("o", "-", "output path (- = stdout)")
	path, err := parseWithOnePath(fs, args)
	if err != nil {
		return err
	}
	recs, err := readRecords(path)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return obs.WriteChromeTrace(w, recs)
}

func runShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	path, err := parseWithOnePath(fs, args)
	if err != nil {
		return err
	}
	recs, err := readRecords(path)
	if err != nil {
		return err
	}
	show(os.Stdout, recs)
	return nil
}

// parseWithOnePath parses fs accepting flags before or after the single
// positional recording path (stdlib flag stops at the first positional).
func parseWithOnePath(fs *flag.FlagSet, args []string) (string, error) {
	fs.Parse(args) //nolint:errcheck // ExitOnError
	path := ""
	for rest := fs.Args(); len(rest) > 0; rest = fs.Args() {
		if path != "" {
			return "", fmt.Errorf("%s wants exactly one recording path, got %q and %q", fs.Name(), path, rest[0])
		}
		path = rest[0]
		fs.Parse(rest[1:]) //nolint:errcheck // ExitOnError
	}
	if path == "" {
		return "", fmt.Errorf("%s wants a recording path (- = stdin)", fs.Name())
	}
	return path, nil
}

// show renders every trace as an indented tree, in first-record order.
func show(w io.Writer, recs []obs.Record) {
	byTrace := make(map[obs.TraceID][]obs.Record)
	var order []obs.TraceID
	for _, rec := range recs {
		if _, ok := byTrace[rec.Trace]; !ok {
			order = append(order, rec.Trace)
		}
		byTrace[rec.Trace] = append(byTrace[rec.Trace], rec)
	}
	fmt.Fprintf(w, "%d records, %d traces\n", len(recs), len(order))
	for _, trace := range order {
		members := byTrace[trace]
		fmt.Fprintf(w, "\ntrace %d (%d records)\n", trace, len(members))
		children := make(map[obs.SpanID][]obs.Record)
		var roots []obs.Record
		known := make(map[obs.SpanID]bool, len(members))
		for _, m := range members {
			if m.Kind == obs.KindSpan {
				known[m.Span] = true
			}
		}
		for _, m := range members {
			if m.Parent != 0 && known[m.Parent] {
				children[m.Parent] = append(children[m.Parent], m)
			} else {
				roots = append(roots, m)
			}
		}
		for _, m := range roots {
			printTree(w, m, children, 1)
		}
	}
}

func printTree(w io.Writer, rec obs.Record, children map[obs.SpanID][]obs.Record, depth int) {
	indent := strings.Repeat("  ", depth)
	switch rec.Kind {
	case obs.KindSpan:
		fmt.Fprintf(w, "%s%s/%s  %.3fms%s\n",
			indent, rec.Component, rec.Name,
			float64(rec.Dur.Nanoseconds())/1e6, attrString(rec.Attrs))
	case obs.KindEvent:
		fmt.Fprintf(w, "%s! %s/%s  value=%g\n", indent, rec.Component, rec.Name, rec.Value)
	case obs.KindLink:
		fmt.Fprintf(w, "%s→ links trace %d span %d\n", indent, rec.LinkTrace, rec.LinkSpan)
	}
	kids := children[rec.Span]
	sort.SliceStable(kids, func(i, j int) bool { return kids[i].Seq < kids[j].Seq })
	for _, kid := range kids {
		printTree(w, kid, children, depth+1)
	}
}

func attrString(attrs []obs.Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, a := range attrs {
		sb.WriteString("  ")
		sb.WriteString(a.Key)
		sb.WriteByte('=')
		if a.Str != "" {
			sb.WriteString(a.Str)
		} else {
			fmt.Fprintf(&sb, "%g", a.Num)
		}
	}
	return sb.String()
}
