// Command fttt-serve is the tracking-as-a-service daemon: a
// long-running HTTP/JSON server managing fault-tolerant tracking
// sessions (internal/serve) with micro-batched localization, bounded
// admission with load shedding, request deadlines, SSE estimate
// streams, and graceful drain on SIGTERM/SIGINT. The obs debug
// endpoints (/metrics, /debug/vars, /debug/pprof/) share the listener.
//
// Usage:
//
//	fttt-serve -addr :8080
//	fttt-serve -addr 127.0.0.1:0 -max-batch 32 -batch-wait 1ms -queue 512
//	fttt-serve -field-cache-dir /var/lib/fttt/fieldcache
//	fttt-serve -field-cache-dir /mnt/shared/fieldcache -migrate-grace 15s   # cluster member behind fttt-router
//
// Sessions share preprocessed field divisions through a
// content-addressed cache (internal/fieldcache); -field-cache-dir
// persists built divisions so a restarted server warm-starts without
// re-dividing. See the README's "Serving" section for a curl
// walkthrough of the API and the warm-restart flow.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fttt/internal/fieldcache"
	"fttt/internal/obs"
	"fttt/internal/serve"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		maxBatch      = flag.Int("max-batch", 0, "micro-batch size ceiling (0 = default 16)")
		batchWait     = flag.Duration("batch-wait", 0, "max wait for batch stragglers (0 = default 2ms)")
		queue         = flag.Int("queue", 0, "per-session admission queue limit (0 = default 256)")
		timeout       = flag.Duration("timeout", 0, "default per-request deadline (0 = default 5s)")
		workers       = flag.Int("workers", 0, "batch worker pool size (0 = CPU count)")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight requests on shutdown")
		migrateGrace  = flag.Duration("migrate-grace", 0, "after SIGTERM, hold quiesced sessions this long for a router to migrate them off before teardown (0 = tear down immediately)")
		traceRecords  = flag.Int("trace-records", 0, "per-session flight-recorder capacity in trace records (0 = tracing off)")
		fieldCacheDir = flag.String("field-cache-dir", "", "directory persisting preprocessed field divisions across restarts (empty = in-memory only)")
		fieldCacheMax = flag.Int("field-cache-max", 0, "max resident cached divisions, LRU-evicted when unpinned (0 = unbounded)")
	)
	flag.Parse()
	if err := run(*addr, *maxBatch, *batchWait, *queue, *timeout, *workers, *drainTimeout, *migrateGrace, *traceRecords, *fieldCacheDir, *fieldCacheMax); err != nil {
		fmt.Fprintln(os.Stderr, "fttt-serve:", err)
		os.Exit(1)
	}
}

func run(addr string, maxBatch int, batchWait time.Duration, queue int, timeout time.Duration, workers int, drainTimeout, migrateGrace time.Duration, traceRecords int, fieldCacheDir string, fieldCacheMax int) error {
	reg := obs.NewRegistry()
	build := obs.RegisterBuildInfo(reg)
	fcache, err := fieldcache.New(fieldcache.Config{
		Dir:        fieldCacheDir,
		MaxEntries: fieldCacheMax,
		Obs:        reg,
	})
	if err != nil {
		return err
	}
	srv := serve.New(serve.Config{
		MaxBatch:       maxBatch,
		MaxWait:        batchWait,
		QueueLimit:     queue,
		Workers:        workers,
		RequestTimeout: timeout,
		Obs:            reg,
		TraceRecords:   traceRecords,
		FieldCache:     fcache,
	})
	mux := http.NewServeMux()
	obs.Register(mux, reg)
	mux.Handle("/", srv)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: mux}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "fttt-serve: %s\n", build)
	fmt.Fprintf(os.Stderr, "fttt-serve: listening on http://%s (metrics at /metrics)\n", ln.Addr())
	if traceRecords > 0 {
		fmt.Fprintf(os.Stderr, "fttt-serve: flight recorder on (last %d records per session at /v1/sessions/{id}/debug/trace)\n", traceRecords)
	}
	if fieldCacheDir != "" {
		// Log both cache knobs together: operators sizing a shared
		// cluster spill dir need the eviction bound next to the path.
		if fieldCacheMax > 0 {
			fmt.Fprintf(os.Stderr, "fttt-serve: field-division cache spilling to %s (max %d resident divisions)\n", fieldCacheDir, fieldCacheMax)
		} else {
			fmt.Fprintf(os.Stderr, "fttt-serve: field-division cache spilling to %s (resident divisions unbounded)\n", fieldCacheDir)
		}
	} else if fieldCacheMax > 0 {
		fmt.Fprintf(os.Stderr, "fttt-serve: field-division cache in-memory only (max %d resident divisions)\n", fieldCacheMax)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "fttt-serve: %v: draining (up to %v)\n", s, drainTimeout)
	}

	// Drain first — refuse new work, let admitted requests finish, tear
	// sessions down — then close the listener. With -migrate-grace the
	// teardown is two-phase: quiesce (healthz turns 503, sessions stay
	// exportable), wait up to the grace period for a router to migrate
	// every session off (the table empties as it DELETEs them), then
	// tear down whatever is left.
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout+migrateGrace)
	defer cancel()
	if migrateGrace > 0 {
		if err := srv.Quiesce(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "fttt-serve: quiesce:", err)
		}
		wctx, wcancel := context.WithTimeout(ctx, migrateGrace)
		if err := srv.WaitEmpty(wctx); err != nil {
			fmt.Fprintf(os.Stderr, "fttt-serve: migrate grace elapsed with %d sessions unmigrated\n", srv.SessionCount())
		}
		wcancel()
	}
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "fttt-serve: drain:", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "fttt-serve: stopped")
	return nil
}
