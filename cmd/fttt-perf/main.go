// Command fttt-perf runs the repo's performance-regression harness
// (internal/perfbench): a fixed, seeded scenario suite over the hot
// paths — vector algebra, the division signature pass, the heuristic
// matcher, whole localizations, batched/parallel tracking and the
// serving round-trip — emitting machine-readable reports
// (BENCH_PR<N>.json) and judging them against the committed baseline
// with noise-tolerant thresholds. See DESIGN.md §11 for the
// methodology.
//
// Usage:
//
//	fttt-perf list                          # the scenario catalog
//	fttt-perf run -o BENCH_PR6.json         # full-depth run
//	fttt-perf run -quick -scenarios 'serve/' # short filtered run
//	fttt-perf compare                       # run (quick) + diff vs results/perf/baseline.json
//	fttt-perf compare -current BENCH_PR6.json -full
//	fttt-perf baseline                      # regenerate results/perf/baseline.json
//	fttt-perf run -profiles results/perf/profiles  # + cpu/heap pprof per scenario
//
// Exit status: 0 on success, 1 on usage or runtime errors, 2 when
// compare finds a regression (or a scenario missing from the current
// run).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"time"

	"fttt/internal/perfbench"
)

const defaultBaseline = "results/perf/baseline.json"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 1
	}
	switch args[0] {
	case "list":
		return cmdList(stdout)
	case "run":
		return cmdRun(args[1:], stdout, stderr)
	case "compare":
		return cmdCompare(args[1:], stdout, stderr)
	case "baseline":
		return cmdBaseline(args[1:], stdout, stderr)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return 0
	default:
		fmt.Fprintf(stderr, "fttt-perf: unknown subcommand %q\n", args[0])
		usage(stderr)
		return 1
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `fttt-perf — FTTT performance-regression harness

subcommands:
  list       print the scenario catalog
  run        run the suite and write a JSON report (-o)
  compare    run the suite (or load -current) and diff against -baseline
  baseline   run the suite at full depth and (re)write the baseline

common flags (run / compare / baseline):
  -reps N          measured repetitions per scenario (default 3)
  -benchtime D     duration of one repetition (default 200ms; compare defaults to quick)
  -quick           short repetitions (25ms) for smoke runs
  -scenarios RE    only scenarios matching the regexp
  -profiles DIR    capture cpu/heap pprof profiles per scenario
  -label S         label recorded in the report
`)
}

// runFlags are the flags shared by run/compare/baseline.
type runFlags struct {
	fs        *flag.FlagSet
	reps      *int
	benchtime *time.Duration
	quick     *bool
	scenarios *string
	profiles  *string
	label     *string
}

func newRunFlags(name string) runFlags {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	return runFlags{
		fs:        fs,
		reps:      fs.Int("reps", 0, "measured repetitions per scenario (0 = default 3)"),
		benchtime: fs.Duration("benchtime", 0, "duration of one repetition (0 = default)"),
		quick:     fs.Bool("quick", false, "short repetitions (25ms) for smoke runs"),
		scenarios: fs.String("scenarios", "", "regexp selecting scenario names"),
		profiles:  fs.String("profiles", "", "directory for per-scenario cpu/heap pprof profiles"),
		label:     fs.String("label", "", "label recorded in the report"),
	}
}

func (rf runFlags) options(stderr io.Writer) (perfbench.Options, error) {
	opts := perfbench.Options{
		Reps:       *rf.reps,
		BenchTime:  *rf.benchtime,
		ProfileDir: *rf.profiles,
		Label:      *rf.label,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, format+"\n", args...)
		},
	}
	if *rf.quick && opts.BenchTime == 0 {
		opts.BenchTime = 25 * time.Millisecond
	}
	if *rf.scenarios != "" {
		re, err := regexp.Compile(*rf.scenarios)
		if err != nil {
			return opts, fmt.Errorf("bad -scenarios regexp: %w", err)
		}
		opts.Filter = re
	}
	return opts, nil
}

func cmdList(stdout io.Writer) int {
	for _, sc := range perfbench.Suite() {
		fmt.Fprintf(stdout, "%-28s %-5s seed=%-3d %s\n", sc.Name, sc.Kind, sc.Seed, sc.Summary)
		fmt.Fprintf(stdout, "%-28s %-5s          ↳ %s\n", "", "", sc.MapsTo)
	}
	return 0
}

func cmdRun(args []string, stdout, stderr io.Writer) int {
	rf := newRunFlags("run")
	out := rf.fs.String("o", "", "write the JSON report here (default: stdout)")
	if err := rf.fs.Parse(args); err != nil {
		return 1
	}
	opts, err := rf.options(stderr)
	if err != nil {
		fmt.Fprintf(stderr, "fttt-perf: %v\n", err)
		return 1
	}
	rep, err := perfbench.Run(opts)
	if err != nil {
		fmt.Fprintf(stderr, "fttt-perf: %v\n", err)
		return 1
	}
	if *out == "" {
		if err := writeReport(stdout, rep); err != nil {
			fmt.Fprintf(stderr, "fttt-perf: %v\n", err)
			return 1
		}
		return 0
	}
	if err := rep.WriteFile(*out); err != nil {
		fmt.Fprintf(stderr, "fttt-perf: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "wrote %s (%d scenarios)\n", *out, len(rep.Scenarios))
	return 0
}

func writeReport(w io.Writer, rep *perfbench.Report) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", b)
	return err
}

func cmdCompare(args []string, stdout, stderr io.Writer) int {
	rf := newRunFlags("compare")
	baseline := rf.fs.String("baseline", defaultBaseline, "baseline report to judge against")
	current := rf.fs.String("current", "", "pre-recorded report to judge (skips running the suite)")
	threshold := rf.fs.Float64("threshold", 0, "fractional median-ns/op regression tolerated (0 = default 0.30)")
	allocThreshold := rf.fs.Float64("alloc-threshold", 0, "fractional allocs/op regression tolerated (0 = default 0.10)")
	full := rf.fs.Bool("full", false, "full-depth repetitions (compare defaults to -quick)")
	if err := rf.fs.Parse(args); err != nil {
		return 1
	}

	base, err := perfbench.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(stderr, "fttt-perf: baseline: %v\n", err)
		return 1
	}

	var cur *perfbench.Report
	if *current != "" {
		if cur, err = perfbench.ReadFile(*current); err != nil {
			fmt.Fprintf(stderr, "fttt-perf: current: %v\n", err)
			return 1
		}
	} else {
		opts, err := rf.options(stderr)
		if err != nil {
			fmt.Fprintf(stderr, "fttt-perf: %v\n", err)
			return 1
		}
		// compare runs are smoke runs unless -full/-benchtime says
		// otherwise: the thresholds are sized for short repetitions.
		if !*full && opts.BenchTime == 0 {
			opts.BenchTime = 25 * time.Millisecond
		}
		if cur, err = perfbench.Run(opts); err != nil {
			fmt.Fprintf(stderr, "fttt-perf: %v\n", err)
			return 1
		}
	}

	cmp := perfbench.Compare(base, cur, perfbench.CompareOptions{
		MaxRegression:      *threshold,
		MaxAllocRegression: *allocThreshold,
	})
	cmp.Format(stdout)
	if cmp.Failed() {
		fmt.Fprintf(stderr, "fttt-perf: %d regression(s): %v\n", len(cmp.Regressions), cmp.Regressions)
		return 2
	}
	fmt.Fprintln(stderr, "fttt-perf: no regressions")
	return 0
}

func cmdBaseline(args []string, stdout, stderr io.Writer) int {
	rf := newRunFlags("baseline")
	out := rf.fs.String("o", defaultBaseline, "baseline path to (re)write")
	if err := rf.fs.Parse(args); err != nil {
		return 1
	}
	opts, err := rf.options(stderr)
	if err != nil {
		fmt.Fprintf(stderr, "fttt-perf: %v\n", err)
		return 1
	}
	if opts.Label == "" {
		opts.Label = "baseline"
	}
	rep, err := perfbench.Run(opts)
	if err != nil {
		fmt.Fprintf(stderr, "fttt-perf: %v\n", err)
		return 1
	}
	if err := rep.WriteFile(*out); err != nil {
		fmt.Fprintf(stderr, "fttt-perf: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "wrote %s (%d scenarios)\n", *out, len(rep.Scenarios))
	return 0
}
