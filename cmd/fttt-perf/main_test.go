package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"fttt/internal/perfbench"
)

// synthetic writes a schema-valid report with every named scenario at
// the given median/allocs and returns its path.
func synthetic(t *testing.T, dir, name string, medianNs float64, allocs int64) string {
	t.Helper()
	rep := &perfbench.Report{
		Schema: perfbench.Schema, GoVersion: "go-test", GOOS: "linux", GOARCH: "amd64",
		GOMAXPROCS: 1, NumCPU: 1, Reps: 3,
	}
	for _, sc := range perfbench.Suite() {
		rep.Scenarios = append(rep.Scenarios, perfbench.ScenarioResult{
			Name: sc.Name, Kind: sc.Kind, Seed: sc.Seed, MapsTo: sc.MapsTo,
			Iters:   []int{100, 100, 100},
			NsPerOp: []float64{medianNs, medianNs, medianNs}, MedianNsPerOp: medianNs,
			AllocsPerOp: allocs,
		})
	}
	path := filepath.Join(dir, name)
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareExitCodes is the acceptance check: `fttt-perf compare`
// exits non-zero on an injected synthetic regression and zero on a
// clean run.
func TestCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := synthetic(t, dir, "baseline.json", 1000, 84)
	same := synthetic(t, dir, "same.json", 1050, 84)
	slow := synthetic(t, dir, "slow.json", 2500, 84) // injected +150% regression
	leaky := synthetic(t, dir, "leaky.json", 1000, 500)

	var out, errw bytes.Buffer
	if code := run([]string{"compare", "-baseline", base, "-current", same}, &out, &errw); code != 0 {
		t.Fatalf("clean compare exited %d: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "core/localize") {
		t.Errorf("delta table missing scenarios:\n%s", out.String())
	}

	out.Reset()
	errw.Reset()
	if code := run([]string{"compare", "-baseline", base, "-current", slow}, &out, &errw); code != 2 {
		t.Fatalf("synthetic time regression exited %d, want 2 (stderr: %s)", code, errw.String())
	}
	if !strings.Contains(out.String(), "regression") {
		t.Errorf("delta table does not say regression:\n%s", out.String())
	}

	if code := run([]string{"compare", "-baseline", base, "-current", leaky}, &out, &errw); code != 2 {
		t.Fatalf("synthetic alloc regression exited %d, want 2", code)
	}

	// A generous explicit threshold lets the slow run pass.
	if code := run([]string{"compare", "-baseline", base, "-current", slow, "-threshold", "2.0"}, &out, &errw); code != 0 {
		t.Fatalf("compare with -threshold 2.0 exited %d, want 0", code)
	}
}

func TestCompareMissingScenarioFails(t *testing.T) {
	dir := t.TempDir()
	base := synthetic(t, dir, "baseline.json", 1000, 84)

	// Current run missing one scenario: truncate the synthetic report.
	rep, err := perfbench.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	rep.Scenarios = rep.Scenarios[:len(rep.Scenarios)-1]
	cur := filepath.Join(dir, "partial.json")
	if err := rep.WriteFile(cur); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if code := run([]string{"compare", "-baseline", base, "-current", cur}, &out, &errw); code != 2 {
		t.Fatalf("missing scenario exited %d, want 2", code)
	}
	if !strings.Contains(out.String(), "missing") {
		t.Errorf("table does not mark the missing scenario:\n%s", out.String())
	}
}

func TestRunSubcommandWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "perf", "BENCH_test.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"run", "-o", out, "-scenarios", "^vector/diff$", "-benchtime", "1ms", "-reps", "2", "-label", "test"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	rep, err := perfbench.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 1 || rep.Scenarios[0].Name != "vector/diff" || rep.Label != "test" {
		t.Fatalf("unexpected report: %+v", rep)
	}
}

func TestListAndUsage(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"list"}, &out, &errw); code != 0 {
		t.Fatalf("list exited %d", code)
	}
	for _, sc := range perfbench.Suite() {
		if !strings.Contains(out.String(), sc.Name) {
			t.Errorf("list missing %s", sc.Name)
		}
	}
	if code := run(nil, &out, &errw); code != 1 {
		t.Errorf("no-args exited %d, want 1", code)
	}
	if code := run([]string{"bogus"}, &out, &errw); code != 1 {
		t.Errorf("unknown subcommand exited %d, want 1", code)
	}
	if code := run([]string{"help"}, &out, &errw); code != 0 {
		t.Errorf("help exited %d, want 0", code)
	}
	if code := run([]string{"compare", "-baseline", "does/not/exist.json", "-current", "x"}, &out, &errw); code != 1 {
		t.Errorf("missing baseline exited %d, want 1", code)
	}
}
