// Command fttt-router shards fttt-serve horizontally: a thin HTTP
// router that consistent-hashes session IDs across a static list of
// backends (internal/cluster), proxies the /v1/sessions API and SSE
// streams transparently, and migrates sessions off a backend that
// starts draining (its /healthz turns 503 after SIGTERM with
// -migrate-grace).
//
// Usage:
//
//	fttt-router -addr :8070 -backends a=http://10.0.0.2:8080,b=http://10.0.0.3:8080
//	fttt-router -backends http://127.0.0.1:8081,http://127.0.0.1:8082 -health-interval 1s
//
// Backends are name=url pairs; a bare URL gets the name bN from its
// position. Names are the placement-hash identity — keep them stable
// across router restarts or sessions will land on different owners.
// Point every backend's -field-cache-dir at one shared directory so a
// migrated session's successor loads its field division from disk
// instead of re-dividing. See README "Running a cluster".
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fttt/internal/cluster"
	"fttt/internal/obs"
)

func main() {
	var (
		addr           = flag.String("addr", ":8070", "listen address")
		backends       = flag.String("backends", "", "comma-separated backend list: name=url pairs or bare urls (required)")
		healthInterval = flag.Duration("health-interval", 2*time.Second, "backend drain-probe period (0 = prober off)")
	)
	flag.Parse()
	if err := run(*addr, *backends, *healthInterval); err != nil {
		fmt.Fprintln(os.Stderr, "fttt-router:", err)
		os.Exit(1)
	}
}

// parseBackends turns "a=http://x,b=http://y" (or bare URLs) into the
// cluster member list.
func parseBackends(spec string) ([]cluster.Backend, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("-backends is required (name=url,name=url)")
	}
	var out []cluster.Backend
	for i, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, u, ok := strings.Cut(part, "=")
		if !ok {
			name, u = fmt.Sprintf("b%d", i+1), part
		}
		out = append(out, cluster.Backend{Name: name, URL: strings.TrimRight(u, "/")})
	}
	return out, nil
}

func run(addr, backendSpec string, healthInterval time.Duration) error {
	members, err := parseBackends(backendSpec)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	build := obs.RegisterBuildInfo(reg)
	rt, err := cluster.New(cluster.Config{
		Backends:       members,
		HealthInterval: healthInterval,
		Obs:            reg,
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: rt}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "fttt-router: %s\n", build)
	fmt.Fprintf(os.Stderr, "fttt-router: listening on http://%s, routing %d backends (metrics at /metrics)\n",
		ln.Addr(), len(members))
	for _, m := range members {
		fmt.Fprintf(os.Stderr, "fttt-router:   backend %s = %s\n", m.Name, m.URL)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "fttt-router: %v: shutting down\n", s)
	}
	if err := hs.Close(); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "fttt-router: stopped")
	return nil
}
